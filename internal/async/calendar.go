package async

// calendarQueue is a bucketed calendar queue (R. Brown, "Calendar Queues: A
// Fast O(1) Priority Queue Implementation for the Simulation Event Set
// Problem", CACM 1988) specialized to the engine's events. It replaces the
// binary heap on the event hot path: push appends to a bucket and pop scans
// one small bucket — O(1) amortized against the heap's O(log n) — and,
// unlike container/heap's interface-boxed Push, neither operation allocates
// once the bucket capacities are warm (the differential allocs gate pins
// this).
//
// Bucket policy. The calendar divides simulation time into days of fixed
// width; day(d) lives in bucket d mod nbuckets, so the bucket array wraps
// around like a calendar year. All day indexing goes through dayOf — a
// single float64 multiply and truncation — so an event's bucket and its
// in-window test can never disagree (day indexes are clamped to
// [0, calMaxDay], which keeps the float→int conversion defined and still
// maps equal days to equal buckets). The width is chosen at every resize so
// the pending events spread to about one per day across their time span
// (span/size, floored at calMinWidth and at a span/2^50 overflow guard);
// the bucket count doubles when occupancy exceeds two events per bucket and
// halves when it falls below one per eight, with the wide hysteresis
// preventing resize thrash. In steady state — occupancy inside the
// hysteresis band — no resize happens and the queue is allocation-free.
//
// Ordering contract. pop returns the globally smallest (at, seq) event —
// exactly eventLess, the heap's order, so FIFO tie-breaking among
// simultaneous events is preserved and async.Run is trace-identical on a
// calendar queue and a heap (pinned by TestCalendarQueueRunMatchesHeap and
// FuzzCalendarQueueMatchesHeap). Correctness rests on one invariant: the
// search day never lies past a pending event (push rewinds the window when
// an event lands on an earlier day; pop only advances past days it proved
// empty). Since dayOf is monotone in time, the first day of the forward
// scan that holds any events holds the globally earliest ones, and a full
// eventLess scan of that one bucket selects the minimum. A full empty year
// means the next event is more than nbuckets·width ahead; pop then finds
// the global minimum by direct scan and jumps the calendar to it.
type calendarQueue struct {
	buckets [][]event
	mask    int // len(buckets)-1; len is a power of two
	width   float64
	inv     float64 // 1/width
	day     int64   // current search day; no pending event lies on an earlier day
	size    int
	spill   []event // resize scratch, reused
}

const (
	// calMinBuckets floors the bucket count; shrinking stops here.
	calMinBuckets = 8
	// calMinWidth floors the day width so a zero time span cannot produce a
	// degenerate calendar.
	calMinWidth = 1e-12
	// calMaxDay clamps day indexes: float64→int64 conversion is defined for
	// every clamped value, and all clamped events share one day (and hence
	// one bucket), where the full eventLess scan still orders them.
	calMaxDay = int64(1) << 52
)

// newCalendarQueue returns an empty calendar with the minimum bucket count
// and a unit day width; the first resize fits both to the workload.
func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{
		buckets: make([][]event, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   1,
		inv:     1,
	}
	return q
}

func (q *calendarQueue) len() int { return q.size }

// dayOf maps a simulation time to its calendar day. Monotone in at; equal
// results always map to the same bucket.
func (q *calendarQueue) dayOf(at float64) int64 {
	d := at * q.inv
	if !(d > 0) { // negative or NaN: clamp to the first day
		return 0
	}
	if d >= float64(calMaxDay) {
		return calMaxDay
	}
	return int64(d)
}

func (q *calendarQueue) push(e event) {
	if q.size >= 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
	d := q.dayOf(e.at)
	b := int(d) & q.mask
	q.buckets[b] = append(q.buckets[b], e)
	q.size++
	if d < q.day {
		// The event lands before the current search day (the window had
		// advanced across empty days): rewind so pop cannot skip it.
		q.day = d
	}
}

func (q *calendarQueue) pop() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	if q.size < len(q.buckets)/8 && len(q.buckets) > calMinBuckets {
		nb := len(q.buckets) / 2
		for nb > calMinBuckets && q.size < nb/8 {
			nb /= 2
		}
		q.resize(nb)
	}
	nb := len(q.buckets)
	for scanned := 0; scanned < nb; scanned++ {
		bucket := q.buckets[int(q.day)&q.mask]
		best := -1
		for j := range bucket {
			if q.dayOf(bucket[j].at) != q.day {
				continue // an event of another wrap of the calendar
			}
			if best < 0 || eventLess(bucket[j], bucket[best]) {
				best = j
			}
		}
		if best >= 0 {
			return q.remove(int(q.day)&q.mask, best), true
		}
		q.day++
	}
	// A whole year of empty days: the next event is more than
	// nbuckets·width ahead. Find it directly and jump the calendar there.
	bi, j := q.globalMin()
	q.day = q.dayOf(q.buckets[bi][j].at)
	return q.remove(bi, j), true
}

// remove swap-deletes event j from bucket bi and returns it.
func (q *calendarQueue) remove(bi, j int) event {
	bucket := q.buckets[bi]
	e := bucket[j]
	last := len(bucket) - 1
	bucket[j] = bucket[last]
	q.buckets[bi] = bucket[:last]
	q.size--
	return e
}

// globalMin locates the smallest (at, seq) event across all buckets. Only
// reached when the forward scan proved a full year empty, so its O(size)
// cost is paid once per long idle gap, not per pop.
func (q *calendarQueue) globalMin() (bi, j int) {
	bi, j = -1, -1
	for b := range q.buckets {
		for k := range q.buckets[b] {
			if bi < 0 || eventLess(q.buckets[b][k], q.buckets[bi][j]) {
				bi, j = b, k
			}
		}
	}
	return bi, j
}

// resize re-buckets every pending event into nb buckets with a width fitted
// to the pending span — about one event per day, the occupancy the O(1)
// analysis assumes.
func (q *calendarQueue) resize(nb int) {
	q.spill = q.spill[:0]
	for b := range q.buckets {
		q.spill = append(q.spill, q.buckets[b]...)
		q.buckets[b] = q.buckets[b][:0]
	}
	if nb != len(q.buckets) {
		q.buckets = make([][]event, nb)
		q.mask = nb - 1
	}
	width := calMinWidth
	if len(q.spill) > 0 {
		minAt, maxAt := q.spill[0].at, q.spill[0].at
		for _, e := range q.spill[1:] {
			if e.at < minAt {
				minAt = e.at
			}
			if e.at > maxAt {
				maxAt = e.at
			}
		}
		if w := (maxAt - minAt) / float64(len(q.spill)); w > width {
			width = w
		}
		// Overflow guard: keep every pending day index far inside calMaxDay.
		if w := maxAt / float64(int64(1)<<50); w > width {
			width = w
		}
	}
	q.width = width
	q.inv = 1 / width
	day := int64(0)
	for i, e := range q.spill {
		d := q.dayOf(e.at)
		if i == 0 || d < day {
			day = d
		}
		q.buckets[int(d)&q.mask] = append(q.buckets[int(d)&q.mask], e)
	}
	q.day = day
}
