package async

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"iabc/internal/core"
	"iabc/internal/topology"
)

func TestWriteCSV(t *testing.T) {
	g, err := topology.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), Config{
		G: g, F: 0, Initial: []float64{0, 1, 2, 3, 4},
		Rule: core.TrimmedMean{}, Delays: Fixed{D: 1},
		MaxRounds: 10, Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(tr.History)+1 {
		t.Fatalf("rows = %d, want %d", len(records), len(tr.History)+1)
	}
	if records[0][0] != "time" || records[0][1] != "range" {
		t.Fatalf("header = %v", records[0])
	}
}
