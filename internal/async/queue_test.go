package async

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// tracesBitIdentical compares two traces field by field, with float64
// payloads compared bitwise — the calendar queue must reproduce the heap's
// runs exactly, not approximately.
func tracesBitIdentical(t *testing.T, want, got *Trace) {
	t.Helper()
	if want.Converged != got.Converged || want.Stalled != got.Stalled {
		t.Fatalf("status: want converged=%v stalled=%v, got converged=%v stalled=%v",
			want.Converged, want.Stalled, got.Converged, got.Stalled)
	}
	if math.Float64bits(want.Time) != math.Float64bits(got.Time) {
		t.Fatalf("end time: want %v, got %v", want.Time, got.Time)
	}
	if want.Deliveries != got.Deliveries {
		t.Fatalf("deliveries: want %d, got %d", want.Deliveries, got.Deliveries)
	}
	if math.Float64bits(want.InitialRange) != math.Float64bits(got.InitialRange) {
		t.Fatalf("initial range: want %v, got %v", want.InitialRange, got.InitialRange)
	}
	if len(want.Rounds) != len(got.Rounds) {
		t.Fatalf("rounds length: want %d, got %d", len(want.Rounds), len(got.Rounds))
	}
	for i := range want.Rounds {
		if want.Rounds[i] != got.Rounds[i] {
			t.Fatalf("rounds[%d]: want %d, got %d", i, want.Rounds[i], got.Rounds[i])
		}
	}
	if len(want.Final) != len(got.Final) {
		t.Fatalf("final length: want %d, got %d", len(want.Final), len(got.Final))
	}
	for i := range want.Final {
		if math.Float64bits(want.Final[i]) != math.Float64bits(got.Final[i]) {
			t.Fatalf("final[%d]: want %v, got %v", i, want.Final[i], got.Final[i])
		}
	}
	if len(want.History) != len(got.History) {
		t.Fatalf("history length: want %d, got %d", len(want.History), len(got.History))
	}
	for i := range want.History {
		w, g := want.History[i], got.History[i]
		if math.Float64bits(w.Time) != math.Float64bits(g.Time) ||
			math.Float64bits(w.Range) != math.Float64bits(g.Range) {
			t.Fatalf("history[%d]: want %+v, got %+v", i, w, g)
		}
	}
}

// TestCalendarQueueRunMatchesHeap replays identical configurations through
// runOnQueue on the production calendar queue and on the container/heap
// reference, across the seeded delay policies, and requires bit-identical
// traces. This is the trace-identity contract Run's doc comment claims.
func TestCalendarQueueRunMatchesHeap(t *testing.T) {
	g7, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	g10, err := topology.Complete(10)
	if err != nil {
		t.Fatal(err)
	}

	type scenario struct {
		name   string
		config func() Config // fresh Config per run: delay RNGs are stateful
	}
	scenarios := []scenario{
		{"fixed/fault-free", func() Config {
			return Config{
				G: g7, F: 0, Initial: initialRamp(7), Rule: core.TrimmedMean{},
				Delays: Fixed{D: 1}, MaxRounds: 50, Epsilon: 1e-9,
			}
		}},
		{"uniform/fixed-adversary", func() Config {
			return Config{
				G: g7, F: 1, Faulty: nodeset.FromMembers(7, 6),
				Initial: initialRamp(7), Rule: core.TrimmedMean{},
				Adversary: adversary.Fixed{Value: 1e6},
				Delays:    &Uniform{B: 1.5, Rng: rand.New(rand.NewSource(5))},
				MaxRounds: 300, Epsilon: 1e-8,
			}
		}},
		{"uniform/silent-stall", func() Config {
			// Two silent faulty on K7 with F=1 exceeds the tolerance: the
			// queue drains and the run stalls — the drain path must match too.
			return Config{
				G: g7, F: 1, Faulty: nodeset.FromMembers(7, 5, 6),
				Initial: initialRamp(7), Rule: core.TrimmedMean{},
				Adversary: adversary.Silent{},
				Delays:    &Uniform{B: 2, Rng: rand.New(rand.NewSource(11))},
				MaxRounds: 60,
			}
		}},
		{"jitter/extremes", func() Config {
			return Config{
				G: g10, F: 2, Faulty: nodeset.FromMembers(10, 8, 9),
				Initial: initialRamp(10), Rule: core.TrimmedMean{},
				Adversary: adversary.Extremes{Amplitude: 100},
				Delays:    Jitter{B: 1.25, Seed: 42},
				MaxRounds: 200, Epsilon: 1e-8,
			}
		}},
		{"jitter/noise-decimated", func() Config {
			return Config{
				G: g10, F: 2, Faulty: nodeset.FromMembers(10, 0, 9),
				Initial: initialRamp(10), Rule: core.TrimmedMean{},
				Adversary: &adversary.RandomNoise{Rng: rand.New(rand.NewSource(7)), Lo: -50, Hi: 50},
				Delays:    Jitter{B: 0.75, Seed: 1},
				MaxRounds: 150, Epsilon: 1e-7,
				HistoryEvery: 16,
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			want, err := runOnQueue(context.Background(), sc.config(), newHeapQueue())
			if err != nil {
				t.Fatal(err)
			}
			got, err := runOnQueue(context.Background(), sc.config(), newCalendarQueue())
			if err != nil {
				t.Fatal(err)
			}
			tracesBitIdentical(t, want, got)
		})
	}
}

// TestCalendarQueueFarJump exercises the full-empty-year fallback: after a
// cluster of near events drains, the next event lies many calendar years
// ahead and pop must find it by direct scan.
func TestCalendarQueueFarJump(t *testing.T) {
	q := newCalendarQueue()
	times := []float64{0.5, 0.25, 0.75, 1e9, 2e9, 1e9} // far pair + tie
	for i, at := range times {
		q.push(event{at: at, seq: int64(i)})
	}
	wantAt := []float64{0.25, 0.5, 0.75, 1e9, 1e9, 2e9}
	wantSeq := []int64{1, 0, 2, 3, 5, 4}
	for i := range wantAt {
		e, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if e.at != wantAt[i] || e.seq != wantSeq[i] {
			t.Fatalf("pop %d: got (at=%v, seq=%d), want (at=%v, seq=%d)",
				i, e.at, e.seq, wantAt[i], wantSeq[i])
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue reported an event")
	}
}

// TestCalendarQueueExtremeTimes pins the clamping corners: negative, zero,
// huge, and +Inf times must still come out in eventLess order.
func TestCalendarQueueExtremeTimes(t *testing.T) {
	q := newCalendarQueue()
	times := []float64{math.Inf(1), -3, 0, 1e300, 5e-13, 1e300}
	for i, at := range times {
		q.push(event{at: at, seq: int64(i)})
	}
	wantAt := []float64{-3, 0, 5e-13, 1e300, 1e300, math.Inf(1)}
	wantSeq := []int64{1, 2, 4, 3, 5, 0}
	for i := range wantAt {
		e, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if e.at != wantAt[i] || e.seq != wantSeq[i] {
			t.Fatalf("pop %d: got (at=%v, seq=%d), want (at=%v, seq=%d)",
				i, e.at, e.seq, wantAt[i], wantSeq[i])
		}
	}
}

// FuzzCalendarQueueMatchesHeap drives the calendar queue and the
// container/heap model with the same byte-derived operation stream and
// requires identical pop sequences — including FIFO order among events
// pushed at equal times, which the byte decoding makes common on purpose.
func FuzzCalendarQueueMatchesHeap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xFF, 3, 3, 0x80, 7})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add([]byte{10, 20, 30, 0xFE, 0xFE, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := newCalendarQueue()
		ref := newHeapQueue()
		var seq int64
		check := func() {
			if cal.len() != ref.len() {
				t.Fatalf("len mismatch: calendar %d, heap %d", cal.len(), ref.len())
			}
			ce, cok := cal.pop()
			he, hok := ref.pop()
			if cok != hok {
				t.Fatalf("pop ok mismatch: calendar %v, heap %v", cok, hok)
			}
			if ce != he {
				t.Fatalf("pop mismatch: calendar %+v, heap %+v", ce, he)
			}
		}
		for _, b := range data {
			if b&0x80 != 0 {
				check()
				continue
			}
			// 3 time bits (0.0 .. 3.5 in steps of 0.5): collisions are the
			// point — they exercise the FIFO tie-break. The low bits scale
			// occasionally into far-future times to force calendar jumps.
			at := float64(b>>4&0x7) * 0.5
			if b&0x0F == 0x0F {
				at *= 1e12
			}
			e := event{at: at, seq: seq, round: int(b)}
			seq++
			cal.push(e)
			ref.push(e)
		}
		for cal.len() > 0 || ref.len() > 0 {
			check()
		}
	})
}

// BenchmarkQueuePushPop contrasts the two eventPQ implementations on the
// engine's characteristic access pattern: a warm queue holding a few dozen
// in-flight events, each op scheduling one event slightly in the future and
// draining one.
func BenchmarkQueuePushPop(b *testing.B) {
	impls := []struct {
		name string
		mk   func() eventPQ
	}{
		{"calendar", func() eventPQ { return newCalendarQueue() }},
		{"heap", func() eventPQ { return newHeapQueue() }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			q := impl.mk()
			var seq int64
			at := 0.0
			for i := 0; i < 42; i++ {
				q.push(event{at: at + float64(i%7), seq: seq})
				seq++
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at += 0.5
				q.push(event{at: at + 3, seq: seq})
				seq++
				if _, ok := q.pop(); !ok {
					b.Fatal("queue empty")
				}
			}
		})
	}
}
