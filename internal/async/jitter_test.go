package async

import (
	"sync"
	"testing"
)

// TestJitterRangeAndDeterminism pins the Jitter contract: every delay is in
// (0, B], the value depends only on (Seed, from, to, round), and distinct
// seeds decorrelate the schedule.
func TestJitterRangeAndDeterminism(t *testing.T) {
	j := Jitter{B: 2.5, Seed: 42}
	same := 0
	for from := 0; from < 8; from++ {
		for to := 0; to < 8; to++ {
			for round := 0; round < 16; round++ {
				d := j.Delay(from, to, round)
				if d <= 0 || d > j.B {
					t.Fatalf("Delay(%d,%d,%d) = %g outside (0,%g]", from, to, round, d, j.B)
				}
				if d != j.Delay(from, to, round) {
					t.Fatalf("Delay(%d,%d,%d) not deterministic", from, to, round)
				}
				if d == (Jitter{B: 2.5, Seed: 43}).Delay(from, to, round) {
					same++
				}
			}
		}
	}
	if same > 0 {
		t.Fatalf("%d delays identical across seeds 42 and 43", same)
	}
}

// TestJitterConcurrentStateless drives one Jitter value from many goroutines
// under -race: a shared-stream policy (like *Uniform) would race here; the
// keyed policy must not, and every goroutine must read identical delays.
func TestJitterConcurrentStateless(t *testing.T) {
	j := Jitter{B: 1, Seed: 9}
	want := make([]float64, 64)
	for i := range want {
		want[i] = j.Delay(i, i+1, i+2)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range want {
				if got := j.Delay(i, i+1, i+2); got != want[i] {
					t.Errorf("concurrent Delay(%d,...) = %g, want %g", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
