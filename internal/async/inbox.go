package async

import "iabc/internal/core"

// inboxRing buffers round-tagged arrivals for one node without per-delivery
// map allocation. Conceptually it is inbox[round][sender] = value for rounds
// in a sliding window [base, base+slots): each round owns a flat slot of
// in-degree values aligned with the node's sorted in-neighbor list, plus
// presence flags (first arrival per (sender, round) wins — equivocating
// re-sends are dropped) and a fill count for the quorum test.
//
// The window advances one round at a time as the node's round counter moves
// and grows geometrically when a sender runs far ahead of the receiver, so
// steady-state delivery touches no allocator at all.
type inboxRing struct {
	deg     int
	base    int // round number stored at ring position start
	start   int // ring position of round base
	slots   int
	vals    []float64 // slots × deg
	present []bool    // slots × deg
	count   []int     // per slot
}

func newInboxRing(deg int) *inboxRing {
	const initialSlots = 8
	return &inboxRing{
		deg:     deg,
		slots:   initialSlots,
		vals:    make([]float64, initialSlots*deg),
		present: make([]bool, initialSlots*deg),
		count:   make([]int, initialSlots),
	}
}

// slot maps a round number in [base, base+slots) to its ring position.
func (ib *inboxRing) slot(round int) int {
	return (ib.start + (round - ib.base)) % ib.slots
}

// grow re-lays the ring out with at least need slots.
func (ib *inboxRing) grow(need int) {
	newSlots := ib.slots * 2
	for newSlots < need {
		newSlots *= 2
	}
	vals := make([]float64, newSlots*ib.deg)
	present := make([]bool, newSlots*ib.deg)
	count := make([]int, newSlots)
	for r := 0; r < ib.slots; r++ {
		old := ib.slot(ib.base + r)
		copy(vals[r*ib.deg:(r+1)*ib.deg], ib.vals[old*ib.deg:(old+1)*ib.deg])
		copy(present[r*ib.deg:(r+1)*ib.deg], ib.present[old*ib.deg:(old+1)*ib.deg])
		count[r] = ib.count[old]
	}
	ib.vals, ib.present, ib.count = vals, present, count
	ib.slots, ib.start = newSlots, 0
}

// put records an arrival for (round, pos) where pos is the sender's index in
// the node's sorted in-neighbor list. It reports whether the arrival was
// fresh (false = duplicate, dropped). round must be ≥ base.
func (ib *inboxRing) put(round, pos int, v float64) bool {
	if round-ib.base >= ib.slots {
		ib.grow(round - ib.base + 1)
	}
	off := ib.slot(round)*ib.deg + pos
	if ib.present[off] {
		return false
	}
	ib.present[off] = true
	ib.vals[off] = v
	ib.count[ib.slot(round)]++
	return true
}

// filled returns how many distinct senders have delivered for round.
func (ib *inboxRing) filled(round int) int {
	if round-ib.base >= ib.slots {
		return 0
	}
	return ib.count[ib.slot(round)]
}

// gather appends the present values of round's slot to buf in ascending
// sender order (positions are aligned with the sorted in-neighbor list
// senders, so no sort is needed) and returns the extended slice.
func (ib *inboxRing) gather(round int, senders []int, buf []core.ValueFrom) []core.ValueFrom {
	s := ib.slot(round)
	for k := 0; k < ib.deg; k++ {
		if ib.present[s*ib.deg+k] {
			buf = append(buf, core.ValueFrom{From: senders[k], Value: ib.vals[s*ib.deg+k]})
		}
	}
	return buf
}

// pop clears the slot of round base and advances the window by one round.
// Callers must have consumed the slot first.
func (ib *inboxRing) pop() {
	s := ib.start
	for k := 0; k < ib.deg; k++ {
		ib.present[s*ib.deg+k] = false
	}
	ib.count[s] = 0
	ib.base++
	ib.start = (ib.start + 1) % ib.slots
}
