package async

import "container/heap"

// eventPQ is the engine's pending-event priority queue: pop returns the
// event with the smallest (at, seq) — earliest simulation time, FIFO among
// simultaneous events (seq is the global push counter). Two implementations
// share the contract: the production calendarQueue (O(1) amortized,
// allocation-free in steady state) and the container/heap-backed heapQueue
// kept as the ordering reference the conformance and fuzz suites replay
// runs against.
type eventPQ interface {
	push(e event)
	pop() (event, bool)
	len() int
}

// eventLess is the total order both queues dequeue in: simulation time,
// then push sequence. It is the exact Less the original heap used, so the
// calendar queue's delivery order is pinned to the historical contract.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapEvents is the container/heap boilerplate over a flat event slice.
type heapEvents []event

func (q heapEvents) Len() int           { return len(q) }
func (q heapEvents) Less(i, j int) bool { return eventLess(q[i], q[j]) }
func (q heapEvents) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *heapEvents) Push(x any)        { *q = append(*q, x.(event)) }
func (q *heapEvents) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// heapQueue adapts container/heap to eventPQ. Every push boxes the event
// into an interface value — one allocation per scheduled message — which is
// why the engine runs on the calendar queue; this implementation exists as
// the reference model for the differential tests.
type heapQueue struct{ h heapEvents }

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) push(e event) { heap.Push(&q.h, e) }

func (q *heapQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

func (q *heapQueue) len() int { return len(q.h) }
