//go:build !race

package async

// raceEnabled reports that the race detector is active; allocation-exact
// tests skip, since instrumentation allocates nondeterministically.
const raceEnabled = false
