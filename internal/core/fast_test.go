package core

import (
	"math"
	"math/rand"
	"testing"
)

// randReceived builds a received vector with distinct senders and values
// drawn to force plenty of ties (small discrete support) as well as smooth
// draws, exercising the sender tie-break.
func randReceived(r *rand.Rand, d int) []ValueFrom {
	received := make([]ValueFrom, d)
	perm := r.Perm(d * 2) // sparse, unordered sender IDs
	for i := range received {
		var v float64
		switch r.Intn(4) {
		case 0:
			v = float64(r.Intn(3)) // heavy ties
		case 1:
			v = r.NormFloat64() * 1e6
		default:
			v = r.Float64()
		}
		received[i] = ValueFrom{From: perm[i], Value: v}
	}
	return received
}

// TestUpdateIntoMatchesReference is the bit-identicality contract of the
// fast path: for every buffered rule, UpdateInto equals Update exactly —
// not within a tolerance — across random in-degrees, f, tie patterns, and
// sender orders.
func TestUpdateIntoMatchesReference(t *testing.T) {
	rules := []BufferedRule{TrimmedMean{}, Mean{}, TrimmedMidpoint{}}
	rng := rand.New(rand.NewSource(42))
	var scratch Scratch
	for trial := 0; trial < 5000; trial++ {
		f := rng.Intn(4)
		d := 2*f + 1 + rng.Intn(8)
		if f == 0 {
			d = 1 + rng.Intn(9)
		}
		received := randReceived(rng, d)
		own := rng.NormFloat64()
		for _, rule := range rules {
			want, errWant := rule.Update(own, received, f)
			got, errGot := rule.UpdateInto(&scratch, own, received, f)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("trial %d rule %s: error mismatch %v vs %v", trial, rule.Name(), errWant, errGot)
			}
			if errWant == nil && math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d rule %s (d=%d f=%d): Update=%v UpdateInto=%v (diff %g)",
					trial, rule.Name(), d, f, want, got, want-got)
			}
		}
	}
}

// TestUpdateIntoTieBreakBySender pins the tie-break: with all values equal,
// the trimmed entries are decided purely by sender ID, and the fast path
// must trim the same senders the reference does.
func TestUpdateIntoTieBreakBySender(t *testing.T) {
	var scratch Scratch
	received := vf(9, 1.0, 3, 1.0, 7, 1.0, 1, 1.0, 5, 1.0)
	// f=2: survivors = sender 5 only (senders 1,3 and 7,9 trimmed).
	want, err := TrimmedMean{}.Update(2, received, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrimmedMean{}.UpdateInto(&scratch, 2, received, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("tie-break mismatch: %v vs %v", want, got)
	}
	// a = 1/(5+1-4) = 1/2; survivors {1.0}; (2+1)/2 = 1.5.
	if want != 1.5 {
		t.Fatalf("reference = %v, want 1.5", want)
	}
}

// TestUpdateIntoSpecialValues covers ±Inf and NaN inputs: both paths share
// the same total order (NaN first, then value, then sender), so they must
// still agree bitwise — and never panic.
func TestUpdateIntoSpecialValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specials := []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1), 1e308}
	var scratch Scratch
	for trial := 0; trial < 2000; trial++ {
		f := 1 + rng.Intn(2)
		d := 2*f + 1 + rng.Intn(5)
		received := make([]ValueFrom, d)
		for i := range received {
			v := rng.Float64()
			if rng.Intn(2) == 0 {
				v = specials[rng.Intn(len(specials))]
			}
			received[i] = ValueFrom{From: i, Value: v}
		}
		rng.Shuffle(d, func(i, j int) { received[i], received[j] = received[j], received[i] })
		want, errWant := TrimmedMean{}.Update(0.5, received, f)
		got, errGot := TrimmedMean{}.UpdateInto(&scratch, 0.5, received, f)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errWant, errGot)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: %x vs %x", trial, math.Float64bits(want), math.Float64bits(got))
		}
	}
}

// TestUpdateIntoErrors mirrors the reference's validation.
func TestUpdateIntoErrors(t *testing.T) {
	var scratch Scratch
	if _, err := (TrimmedMean{}).UpdateInto(&scratch, 0, vf(0, 1, 1, 2), 1); err == nil {
		t.Error("2 values with f=1 should error")
	}
	if _, err := (TrimmedMean{}).UpdateInto(&scratch, 0, nil, 0); err == nil {
		t.Error("empty received should error")
	}
	if _, err := (TrimmedMean{}).UpdateInto(&scratch, 0, vf(0, 1), -1); err == nil {
		t.Error("negative f should error")
	}
}

// TestFastRuleWrapper checks the UpdateRule adapter delegates faithfully.
func TestFastRuleWrapper(t *testing.T) {
	fr := NewFast(TrimmedMean{})
	if fr.Name() != "trimmed-mean" {
		t.Errorf("Name = %q", fr.Name())
	}
	if err := fr.Validate(2, 1); err == nil {
		t.Error("Validate should reject in-degree 2, f=1")
	}
	received := vf(0, 1, 1, 2, 2, 3, 3, 9, 4, 10)
	want, _ := TrimmedMean{}.Update(4, received, 1)
	got, err := fr.Update(4, received, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("FastRule.Update = %v, want %v", got, want)
	}
}

// TestUpdateIntoZeroAlloc asserts the steady-state allocation contract.
func TestUpdateIntoZeroAlloc(t *testing.T) {
	var scratch Scratch
	received := randReceived(rand.New(rand.NewSource(3)), 63)
	// Warm the scratch once, then measure.
	if _, err := (TrimmedMean{}).UpdateInto(&scratch, 0.5, received, 5); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := (TrimmedMean{}).UpdateInto(&scratch, 0.5, received, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("UpdateInto allocates %v per op, want 0", allocs)
	}
}

// FuzzUpdateIntoMatchesReference fuzzes the bit-identicality contract on
// adversarially chosen value patterns.
func FuzzUpdateIntoMatchesReference(f *testing.F) {
	f.Add(int64(1), uint8(7), uint8(1))
	f.Add(int64(99), uint8(15), uint8(3))
	f.Add(int64(-4), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, dRaw, fRaw uint8) {
		fault := int(fRaw % 4)
		d := 2*fault + 1 + int(dRaw%12)
		rng := rand.New(rand.NewSource(seed))
		received := randReceived(rng, d)
		own := rng.NormFloat64()
		var scratch Scratch
		want, errWant := TrimmedMean{}.Update(own, received, fault)
		got, errGot := TrimmedMean{}.UpdateInto(&scratch, own, received, fault)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("error mismatch: %v vs %v", errWant, errGot)
		}
		if errWant == nil && math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("d=%d f=%d: %v vs %v", d, fault, want, got)
		}
	})
}
