package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func vf(pairs ...float64) []ValueFrom {
	out := make([]ValueFrom, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, ValueFrom{From: int(pairs[i]), Value: pairs[i+1]})
	}
	return out
}

func TestSurvivorsTrimsExtremes(t *testing.T) {
	received := vf(0, 5.0, 1, 1.0, 2, 3.0, 3, 9.0, 4, 2.0)
	got, err := Survivors(received, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := vf(4, 2.0, 2, 3.0, 0, 5.0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Survivors = %v, want %v", got, want)
	}
}

func TestSurvivorsF0KeepsAll(t *testing.T) {
	received := vf(0, 2.0, 1, 1.0)
	got, err := Survivors(received, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("f=0 should keep all values, got %v", got)
	}
}

func TestSurvivorsTieBreakBySender(t *testing.T) {
	// Four equal values: with f=1 the trimmed ones are the lowest and
	// highest sender IDs (deterministic "arbitrary" tie-break).
	received := vf(3, 1.0, 1, 1.0, 2, 1.0, 0, 1.0)
	got, err := Survivors(received, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := vf(1, 1.0, 2, 1.0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Survivors = %v, want %v", got, want)
	}
}

func TestSurvivorsErrors(t *testing.T) {
	if _, err := Survivors(vf(0, 1.0, 1, 2.0), 1); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("2 values f=1: err = %v, want ErrInsufficientValues", err)
	}
	if _, err := Survivors(nil, 0); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("0 values f=0: err = %v, want ErrInsufficientValues", err)
	}
	if _, err := Survivors(vf(0, 1.0), -1); err == nil {
		t.Error("negative f should error")
	}
}

func TestSurvivorsDoesNotMutateInput(t *testing.T) {
	received := vf(0, 5.0, 1, 1.0, 2, 3.0)
	orig := append([]ValueFrom(nil), received...)
	if _, err := Survivors(received, 1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(received, orig) {
		t.Fatal("Survivors mutated its input")
	}
}

func TestWeight(t *testing.T) {
	cases := []struct {
		inDeg, f int
		want     float64
	}{
		{3, 1, 1.0 / 2.0}, // 3+1-2 = 2
		{5, 2, 1.0 / 2.0}, // 5+1-4 = 2
		{4, 0, 1.0 / 5.0},
		{6, 1, 1.0 / 5.0},
	}
	for _, tc := range cases {
		if got := Weight(tc.inDeg, tc.f); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("Weight(%d,%d) = %v, want %v", tc.inDeg, tc.f, got, tc.want)
		}
	}
}

func TestTrimmedMeanHandComputed(t *testing.T) {
	// own=4; received 1,2,3,9,10 with f=1 -> survivors 2,3,9;
	// a = 1/(5+1-2) = 1/4; v' = (4+2+3+9)/4 = 4.5.
	rule := TrimmedMean{}
	got, err := rule.Update(4, vf(0, 1, 1, 2, 2, 3, 3, 9, 4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("Update = %v, want 4.5", got)
	}
}

func TestTrimmedMeanF0IsPlainAverage(t *testing.T) {
	rule := TrimmedMean{}
	got, err := rule.Update(1, vf(0, 2, 1, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Update = %v, want %v", got, want)
	}
}

func TestTrimmedMeanValidate(t *testing.T) {
	rule := TrimmedMean{}
	if err := rule.Validate(3, 1); err != nil {
		t.Errorf("in-degree 3, f=1 should validate: %v", err)
	}
	if err := rule.Validate(2, 1); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("in-degree 2, f=1: err = %v, want ErrInsufficientValues", err)
	}
	if err := rule.Validate(0, 0); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("in-degree 0: err = %v", err)
	}
	if err := rule.Validate(3, -1); err == nil {
		t.Error("negative f should error")
	}
}

func TestMeanRule(t *testing.T) {
	rule := Mean{}
	got, err := rule.Update(1, vf(0, 2, 1, 3, 2, 6), 1) // f ignored
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if _, err := rule.Update(1, nil, 0); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("empty received: err = %v", err)
	}
	if err := rule.Validate(0, 0); err == nil {
		t.Error("in-degree 0 should fail validation")
	}
	if err := rule.Validate(1, 5); err != nil {
		t.Errorf("Mean ignores f: %v", err)
	}
}

func TestTrimmedMidpoint(t *testing.T) {
	rule := TrimmedMidpoint{}
	// own=0; received 1,2,3,9,10 f=1 -> survivors 2,3,9; midpoint over
	// {0,2,3,9} = 4.5.
	got, err := rule.Update(0, vf(0, 1, 1, 2, 2, 3, 3, 9, 4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("midpoint = %v, want 4.5", got)
	}
	if _, err := rule.Update(0, vf(0, 1), 1); !errors.Is(err, ErrInsufficientValues) {
		t.Errorf("too few values: err = %v", err)
	}
	if err := rule.Validate(2, 1); err == nil {
		t.Error("validate should match TrimmedMean")
	}
}

func TestRuleNames(t *testing.T) {
	for _, tc := range []struct {
		rule UpdateRule
		want string
	}{
		{TrimmedMean{}, "trimmed-mean"},
		{Mean{}, "mean"},
		{TrimmedMidpoint{}, "trimmed-midpoint"},
	} {
		if got := tc.rule.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestRangeOf(t *testing.T) {
	lo, hi := RangeOf([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("RangeOf = (%v,%v), want (-1,7)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RangeOf(empty) did not panic")
		}
	}()
	RangeOf(nil)
}

// TestQuickTrimmedMeanSafety is the value-level heart of Theorem 2: with at
// most f arbitrary (faulty) values among ≥ 2f+1 received, the update stays
// within the convex hull of the own state and the fault-free received
// values.
func TestQuickTrimmedMeanSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rule := TrimmedMean{}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := r.Intn(3)
		nRecv := 2*f + 1 + r.Intn(5)
		own := r.Float64()
		lo, hi := own, own
		received := make([]ValueFrom, nRecv)
		// Choose up to f faulty positions with wild values.
		nFaulty := r.Intn(f + 1)
		for i := range received {
			var v float64
			if i < nFaulty {
				v = (r.Float64() - 0.5) * 1e9 // wild
			} else {
				v = r.Float64() // honest values in [0,1)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			received[i] = ValueFrom{From: i, Value: v}
		}
		r.Shuffle(len(received), func(i, j int) { received[i], received[j] = received[j], received[i] })
		got, err := rule.Update(own, received, f)
		if err != nil {
			return false
		}
		const tol = 1e-9
		return got >= lo-tol && got <= hi+tol
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateWithinHull: for every rule, with no faulty values the
// update stays within the hull of all inputs — the f = 0 validity property.
func TestQuickUpdateWithinHull(t *testing.T) {
	rules := []UpdateRule{TrimmedMean{}, Mean{}, TrimmedMidpoint{}}
	rng := rand.New(rand.NewSource(10))
	for _, rule := range rules {
		rule := rule
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			f := r.Intn(2)
			nRecv := 2*f + 1 + r.Intn(4)
			own := r.NormFloat64()
			lo, hi := own, own
			received := make([]ValueFrom, nRecv)
			for i := range received {
				v := r.NormFloat64()
				received[i] = ValueFrom{From: i, Value: v}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			got, err := rule.Update(own, received, f)
			if err != nil {
				return false
			}
			const tol = 1e-9
			return got >= lo-tol && got <= hi+tol
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 800, Rand: rng}); err != nil {
			t.Fatalf("rule %s: %v", rule.Name(), err)
		}
	}
}

// TestQuickTrimmedMeanLowerBoundLemma3 checks the per-value inequality of
// Lemma 3: v_i[t] − ψ ≥ a_i (w_j − ψ) for every surviving j and any
// ψ ≤ min over honest values.
func TestQuickTrimmedMeanLowerBoundLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rule := TrimmedMean{}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := 1 + r.Intn(2)
		nRecv := 2*f + 1 + r.Intn(4)
		own := r.Float64()
		received := make([]ValueFrom, nRecv)
		lo := own
		for i := range received {
			v := r.Float64()
			received[i] = ValueFrom{From: i, Value: v}
			if v < lo {
				lo = v
			}
		}
		psi := lo - r.Float64() // any ψ ≤ µ
		got, err := rule.Update(own, received, f)
		if err != nil {
			return false
		}
		surv, err := Survivors(received, f)
		if err != nil {
			return false
		}
		a := Weight(nRecv, f)
		const tol = 1e-9
		if got-psi < a*(own-psi)-tol {
			return false
		}
		for _, s := range surv {
			if got-psi < a*(s.Value-psi)-tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
