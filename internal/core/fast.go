package core

import "fmt"

// This file is the allocation-free fast path through the update rules.
//
// The reference implementations (Update, built on Survivors) copy the
// received vector and sort it with reflection-based sort.Slice on every
// call — fine as an oracle, far too slow for the engines, which evaluate
// Z_i for every node every round. The fast path replaces copy+sort with
// quickselect over a caller-owned Scratch buffer: expected O(d) work for
// in-degree d and zero allocations in steady state.
//
// Invariant: for every rule, inputs, and f, UpdateInto returns bit-identical
// results to Update (see TestUpdateIntoMatchesReference). The key is the
// canonical summation order — own state first, then survivors in received
// order — which selection can reproduce without knowing the full sorted
// order: an entry survives iff its (value, sender) key lies strictly between
// the f-th smallest and the f-th largest keys, both found by quickselect.

// Scratch is reusable workspace for the allocation-free update path. The
// zero value is ready to use; the buffer grows to the largest in-degree seen
// and is then reused, so steady-state updates allocate nothing. A Scratch
// must not be shared between goroutines.
type Scratch struct {
	buf []ValueFrom
}

// load copies received into the scratch buffer, growing it if needed.
func (s *Scratch) load(received []ValueFrom) []ValueFrom {
	if cap(s.buf) < len(received) {
		s.buf = make([]ValueFrom, len(received))
	}
	b := s.buf[:len(received)]
	copy(b, received)
	return b
}

// BufferedRule is implemented by rules that support an allocation-free
// update using caller-provided scratch space. UpdateInto must return results
// bit-identical to Update for every input.
type BufferedRule interface {
	UpdateRule
	// UpdateInto computes Update(own, received, f) using s as workspace. It
	// must not retain received or s beyond the call.
	UpdateInto(s *Scratch, own float64, received []ValueFrom, f int) (float64, error)
}

var (
	_ BufferedRule = TrimmedMean{}
	_ BufferedRule = Mean{}
	_ BufferedRule = TrimmedMidpoint{}
)

// validateTrim mirrors Survivors' input checks without constructing its
// error eagerly.
func validateTrim(d, f int) error {
	if f < 0 {
		return fmt.Errorf("core: negative f %d", f)
	}
	min := 2*f + 1
	if f == 0 {
		min = 1
	}
	if d < min {
		return fmt.Errorf("%w: got %d values with f = %d", ErrInsufficientValues, d, f)
	}
	return nil
}

// trimBounds partitions buf so that the f smallest and f largest keys occupy
// buf[:f] and buf[d-f:], and returns the boundary keys: kLow is the f-th
// smallest (rank f−1) and kHigh the f-th largest (rank d−f). An entry of the
// received vector survives trimming iff kLow < key < kHigh in the total
// order. Requires f ≥ 1 and d ≥ 2f+1.
func trimBounds(buf []ValueFrom, f int) (kLow, kHigh ValueFrom) {
	d := len(buf)
	selectKth(buf, f-1)
	selectKth(buf[f:], d-2*f)
	return buf[f-1], buf[d-f]
}

// UpdateInto implements BufferedRule: equation (2) via quickselect, bit-
// identical to Update.
func (TrimmedMean) UpdateInto(s *Scratch, own float64, received []ValueFrom, f int) (float64, error) {
	d := len(received)
	if err := validateTrim(d, f); err != nil {
		return 0, err
	}
	a := Weight(d, f)
	sum := own
	if f == 0 {
		for _, r := range received {
			sum += r.Value
		}
		return a * sum, nil
	}
	kLow, kHigh := trimBounds(s.load(received), f)
	for _, r := range received {
		if less(kLow, r) && less(r, kHigh) {
			sum += r.Value
		}
	}
	return a * sum, nil
}

// SurvivorMask writes, for each entry of received, whether it survives
// f-trimming: mask[k] is true iff received[k] ∈ N*_i[t]. The survivor set is
// identical to Survivors' (same total order, same sender tie-break). len
// of mask must equal len(received). Zero allocations in steady state; the
// matrix engine uses it to materialize each round's row structure.
func (s *Scratch) SurvivorMask(received []ValueFrom, f int, mask []bool) error {
	if len(mask) != len(received) {
		return fmt.Errorf("core: mask length %d != received length %d", len(mask), len(received))
	}
	if err := validateTrim(len(received), f); err != nil {
		return err
	}
	if f == 0 {
		for i := range mask {
			mask[i] = true
		}
		return nil
	}
	kLow, kHigh := trimBounds(s.load(received), f)
	for i, r := range received {
		mask[i] = less(kLow, r) && less(r, kHigh)
	}
	return nil
}

// UpdateInto implements BufferedRule. Mean is already allocation-free.
func (m Mean) UpdateInto(_ *Scratch, own float64, received []ValueFrom, f int) (float64, error) {
	return m.Update(own, received, f)
}

// UpdateInto implements BufferedRule: the surviving extremes are the rank-f
// and rank-(d−f−1) values, read off the partitioned scratch buffer.
func (TrimmedMidpoint) UpdateInto(s *Scratch, own float64, received []ValueFrom, f int) (float64, error) {
	d := len(received)
	if err := validateTrim(d, f); err != nil {
		return 0, err
	}
	lo, hi := own, own
	if f == 0 {
		for _, r := range received {
			if r.Value < lo {
				lo = r.Value
			}
			if r.Value > hi {
				hi = r.Value
			}
		}
		return (lo + hi) / 2, nil
	}
	buf := s.load(received)
	trimBounds(buf, f)
	for _, r := range buf[f : d-f] {
		if r.Value < lo {
			lo = r.Value
		}
		if r.Value > hi {
			hi = r.Value
		}
	}
	return (lo + hi) / 2, nil
}

// FastRule adapts a BufferedRule to the plain UpdateRule interface with an
// internally owned Scratch, for callers that cannot thread scratch space
// through (benchmark harnesses, ad-hoc scripts). Because the scratch is
// shared across calls, a FastRule must not be used from multiple goroutines;
// the engines instead hold one Scratch per goroutine and call UpdateInto
// directly.
type FastRule struct {
	R BufferedRule
	s Scratch
}

var _ UpdateRule = (*FastRule)(nil)

// NewFast wraps r in a FastRule.
func NewFast(r BufferedRule) *FastRule { return &FastRule{R: r} }

// Name implements UpdateRule.
func (fr *FastRule) Name() string { return fr.R.Name() }

// Validate implements UpdateRule.
func (fr *FastRule) Validate(inDegree, f int) error { return fr.R.Validate(inDegree, f) }

// Update implements UpdateRule via the allocation-free path.
func (fr *FastRule) Update(own float64, received []ValueFrom, f int) (float64, error) {
	return fr.R.UpdateInto(&fr.s, own, received, f)
}

// selectKth partially sorts buf so that buf[k] holds the rank-k element of
// the total order `less`, every earlier element is no greater, and every
// later element is no smaller. Iterative quickselect with median-of-three
// pivots and an insertion-sort base case: expected O(len(buf)), no
// allocation, deterministic.
func selectKth(buf []ValueFrom, k int) {
	lo, hi := 0, len(buf) // active window [lo, hi)
	for {
		if hi-lo <= 16 {
			insertionSort(buf[lo:hi])
			return
		}
		mid := lo + (hi-lo)/2
		m := medianIndex(buf, lo, mid, hi-1)
		buf[lo], buf[m] = buf[m], buf[lo]
		pivot := buf[lo]
		// Lomuto partition of (lo, hi) around pivot.
		i := lo + 1
		for j := lo + 1; j < hi; j++ {
			if less(buf[j], pivot) {
				buf[i], buf[j] = buf[j], buf[i]
				i++
			}
		}
		p := i - 1
		buf[lo], buf[p] = buf[p], buf[lo]
		switch {
		case k < p:
			hi = p
		case k > p:
			lo = p + 1
		default:
			return
		}
	}
}

// medianIndex returns the index (one of a, b, c) holding the median of the
// three elements.
func medianIndex(buf []ValueFrom, a, b, c int) int {
	if less(buf[b], buf[a]) {
		a, b = b, a
	}
	if less(buf[c], buf[b]) {
		b = c
		if less(buf[b], buf[a]) {
			b = a
		}
	}
	return b
}

// insertionSort fully sorts a small window in place.
func insertionSort(buf []ValueFrom) {
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && less(buf[j], buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
}
