package core

import (
	"math"
	"testing"
)

// FuzzTrimmedMeanValidity fuzzes the value-level safety property behind
// Theorem 2: whatever f wild values an adversary injects among 2f+1 honest
// ones, the update never leaves the convex hull of the honest inputs.
func FuzzTrimmedMeanValidity(f *testing.F) {
	f.Add(0.5, 0.1, 0.9, 0.4, 1e9, uint8(1))
	f.Add(0.0, 0.0, 0.0, 0.0, -1e12, uint8(1))
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, uint8(0))
	f.Fuzz(func(t *testing.T, own, h1, h2, h3, wild float64, faults uint8) {
		for _, v := range []float64{own, h1, h2, h3, wild} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return // the algorithm operates on reals
			}
		}
		fCount := int(faults % 2) // 0 or 1
		received := []ValueFrom{
			{From: 0, Value: h1},
			{From: 1, Value: h2},
			{From: 2, Value: h3},
		}
		if fCount == 1 {
			received = append(received, ValueFrom{From: 3, Value: wild})
		}
		got, err := TrimmedMean{}.Update(own, received, fCount)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		lo, hi := own, own
		for _, v := range []float64{h1, h2, h3} {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		// With fCount = 0 the wild value is absent; with fCount = 1 it is
		// present but must be trimmed or sandwiched. Allow relative slack
		// for float accumulation.
		slack := 1e-9 * (1 + math.Abs(lo) + math.Abs(hi))
		if got < lo-slack || got > hi+slack {
			t.Fatalf("update %v left honest hull [%v, %v] (own=%v wild=%v f=%d)",
				got, lo, hi, own, wild, fCount)
		}
	})
}
