// Package core implements the paper's primary contribution on the value
// level: Algorithm 1 — the iterative trimmed-mean update rule Z_i — together
// with the UpdateRule abstraction that lets the simulation engines and the
// benchmark harness swap in baseline and ablation rules.
//
// Each iteration t ≥ 1, every node i sends its state v_i[t−1] to its
// out-neighbors, receives one value per in-neighbor (the vector r_i[t]),
// and computes
//
//	v_i[t] = Z_i(r_i[t], v_i[t−1]).
//
// For Algorithm 1, Z_i sorts r_i[t], discards the f smallest and f largest
// values (breaking ties arbitrarily — here: deterministically by sender ID),
// and averages the survivors together with its own previous state with equal
// weights a_i = 1/(|N⁻_i| + 1 − 2f) (equations (2)–(3)).
//
// The package is deliberately independent of graph and engine types: a rule
// maps (own state, received values, f) to a new state, nothing more. That
// keeps the contraction analysis (internal/analysis) and both engines
// (internal/sim, internal/async) reusable over every rule.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInsufficientValues indicates that a node received too few values for
// the trimming rule to be defined (fewer than 2f+1 in-neighbor values; by
// Corollary 3 any graph admitting consensus provides at least 2f+1).
var ErrInsufficientValues = errors.New("core: fewer than 2f+1 received values")

// ValueFrom is one entry of the received vector r_i[t]: the value together
// with the in-neighbor that sent it. Faulty senders may put anything in
// Value; From is trustworthy because edges are authenticated (Section 2.1).
type ValueFrom struct {
	From  int
	Value float64
}

// UpdateRule abstracts the transition function Z_i of the iterative
// algorithm family defined in Section 2.3 (state = single real, no history,
// no sense of time).
type UpdateRule interface {
	// Name identifies the rule in traces and benchmark output.
	Name() string
	// Validate reports whether a node with the given in-degree can run the
	// rule tolerating f faults. Engines call it once per node at setup.
	Validate(inDegree, f int) error
	// Update computes the new state from the previous own state and the
	// received vector. Implementations must not retain or mutate received.
	Update(own float64, received []ValueFrom, f int) (float64, error)
}

// TrimmedMean is Algorithm 1. The zero value is ready to use.
type TrimmedMean struct{}

var _ UpdateRule = TrimmedMean{}

// Name implements UpdateRule.
func (TrimmedMean) Name() string { return "trimmed-mean" }

// Validate requires in-degree ≥ 2f+1 (Corollary 3). The update itself is
// defined for in-degree ≥ 2f, but with exactly 2f incoming values every
// received value is discarded and the node freezes; the paper proves ≥ 2f+1
// is necessary for consensus, so engines reject such configurations early.
func (TrimmedMean) Validate(inDegree, f int) error {
	if f < 0 {
		return fmt.Errorf("core: negative f %d", f)
	}
	if f > 0 && inDegree < 2*f+1 {
		return fmt.Errorf("%w: in-degree %d < 2f+1 = %d", ErrInsufficientValues, inDegree, 2*f+1)
	}
	if inDegree < 1 {
		return fmt.Errorf("%w: in-degree %d < 1", ErrInsufficientValues, inDegree)
	}
	return nil
}

// Update implements equation (2): sort r_i[t], drop the f smallest and f
// largest, and return a_i·(own + Σ_{j∈N*_i[t]} w_j) with
// a_i = 1/(|r_i[t]|+1−2f).
//
// The summation order is canonical: own state first, then the surviving
// values in the order they appear in received (engines build received in
// ascending sender order). Fixing the order makes the result bit-for-bit
// reproducible and lets the allocation-free fast path (UpdateInto) match it
// exactly. Senders in received must be distinct, as they are for any real
// received vector r_i[t].
func (TrimmedMean) Update(own float64, received []ValueFrom, f int) (float64, error) {
	survivors, err := Survivors(received, f)
	if err != nil {
		return 0, err
	}
	// Membership by binary search in the sorted survivor slice keeps this
	// reference path independent of the selection logic the fast path uses;
	// the cross-check tests lean on that independence.
	a := Weight(len(received), f)
	sum := own
	for _, r := range received {
		if containsKey(survivors, r) {
			sum += r.Value
		}
	}
	return a * sum, nil
}

// containsKey reports whether the (value, sender) key of x appears in the
// less()-sorted slice sorted. Equality is in the total order (not ==, which
// NaN values would break).
func containsKey(sorted []ValueFrom, x ValueFrom) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(sorted[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && !less(x, sorted[lo])
}

// Survivors returns N*_i[t] with values (step 3 of Algorithm 1): the
// received vector sorted ascending with the f smallest and f largest
// entries removed. Ties are broken by sender ID, a concrete instance of the
// paper's "breaking ties arbitrarily". The input is not mutated.
//
// It returns ErrInsufficientValues if len(received) < 2f+1 (or < 1 when
// f = 0).
func Survivors(received []ValueFrom, f int) ([]ValueFrom, error) {
	if f < 0 {
		return nil, fmt.Errorf("core: negative f %d", f)
	}
	min := 2*f + 1
	if f == 0 {
		min = 1
	}
	if len(received) < min {
		return nil, fmt.Errorf("%w: got %d values with f = %d", ErrInsufficientValues, len(received), f)
	}
	sorted := make([]ValueFrom, len(received))
	copy(sorted, received)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	return sorted[f : len(sorted)-f], nil
}

// less is the total order the trimming step sorts by: ascending value, ties
// broken by sender ID. NaN values (never produced by the engines, but
// representable) order before every real and among themselves by sender, so
// the order stays total and both the reference and fast paths agree on it.
func less(a, b ValueFrom) bool {
	aNaN, bNaN := a.Value != a.Value, b.Value != b.Value
	switch {
	case aNaN && bNaN:
		return a.From < b.From
	case aNaN || bNaN:
		return aNaN
	case a.Value != b.Value:
		return a.Value < b.Value
	default:
		return a.From < b.From
	}
}

// Weight returns a_i = 1/(inDegree + 1 − 2f), the equal weight of
// equation (2). It is the contraction parameter entering α (equation (3)).
func Weight(inDegree, f int) float64 {
	return 1.0 / float64(inDegree+1-2*f)
}

// Mean is the non-fault-tolerant baseline: the plain average of the own
// state and all received values (the classical f = 0 iterative consensus of
// [4]). Under Byzantine faults it violates validity — the E9 ablation
// demonstrates why trimming is essential.
type Mean struct{}

var _ UpdateRule = Mean{}

// Name implements UpdateRule.
func (Mean) Name() string { return "mean" }

// Validate requires at least one received value.
func (Mean) Validate(inDegree, f int) error {
	if inDegree < 1 {
		return fmt.Errorf("%w: in-degree %d < 1", ErrInsufficientValues, inDegree)
	}
	return nil
}

// Update averages own and all received values with equal weight
// 1/(len(received)+1); f is ignored. The sum is multiplied by the weight
// (rather than divided by the count) so Mean shares the exact arithmetic of
// TrimmedMean with f = 0 and of the matrix engine's row evaluation.
func (Mean) Update(own float64, received []ValueFrom, f int) (float64, error) {
	if len(received) == 0 {
		return 0, fmt.Errorf("%w: got 0 values", ErrInsufficientValues)
	}
	sum := own
	for _, r := range received {
		sum += r.Value
	}
	return Weight(len(received), 0) * sum, nil
}

// TrimmedMidpoint is an ablation rule: trim exactly like Algorithm 1, then
// jump to the midpoint of the surviving interval (including the own state)
// instead of averaging. It keeps the validity argument of Theorem 2 (the
// midpoint of values in [µ[t−1], U[t−1]] stays in range) but abandons the
// a_i weight structure that Lemma 5's contraction bound is built on —
// benchmark E9 contrasts its convergence with Algorithm 1's.
type TrimmedMidpoint struct{}

var _ UpdateRule = TrimmedMidpoint{}

// Name implements UpdateRule.
func (TrimmedMidpoint) Name() string { return "trimmed-midpoint" }

// Validate matches TrimmedMean's requirement.
func (TrimmedMidpoint) Validate(inDegree, f int) error {
	return TrimmedMean{}.Validate(inDegree, f)
}

// Update returns (min+max)/2 over the own state and the trimmed survivors.
func (TrimmedMidpoint) Update(own float64, received []ValueFrom, f int) (float64, error) {
	survivors, err := Survivors(received, f)
	if err != nil {
		return 0, err
	}
	lo, hi := own, own
	for _, s := range survivors {
		if s.Value < lo {
			lo = s.Value
		}
		if s.Value > hi {
			hi = s.Value
		}
	}
	return (lo + hi) / 2, nil
}

// RangeOf returns the smallest and largest values in states. It panics on
// an empty slice (callers always pass at least one fault-free node).
func RangeOf(states []float64) (lo, hi float64) {
	if len(states) == 0 {
		panic("core: RangeOf of empty slice")
	}
	lo, hi = states[0], states[0]
	for _, v := range states[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
