package core_test

import (
	"fmt"
	"log"

	"iabc/internal/core"
)

// ExampleTrimmedMean_Update evaluates one step of Algorithm 1 by hand:
// own state 4, received {1, 2, 3, 9, 10}, f = 1. The trim discards 1 and
// 10; the weight is a = 1/(5+1−2) = 1/4; the update is (4+2+3+9)/4 = 4.5.
func ExampleTrimmedMean_Update() {
	received := []core.ValueFrom{
		{From: 0, Value: 1},
		{From: 1, Value: 2},
		{From: 2, Value: 3},
		{From: 3, Value: 9},
		{From: 4, Value: 10},
	}
	v, err := core.TrimmedMean{}.Update(4, received, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output:
	// 4.5
}

// ExampleSurvivors shows N*_i[t]: the received vector after discarding the
// f smallest and f largest values.
func ExampleSurvivors() {
	received := []core.ValueFrom{
		{From: 0, Value: 5},
		{From: 1, Value: 1},
		{From: 2, Value: 3},
		{From: 3, Value: 9},
		{From: 4, Value: 2},
	}
	surv, err := core.Survivors(received, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range surv {
		fmt.Printf("from %d: %g\n", s.From, s.Value)
	}
	// Output:
	// from 4: 2
	// from 2: 3
	// from 0: 5
}
