package analysis

import (
	"errors"
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/sim"
)

// PhaseRecord is one phase of Theorem 3's inductive argument, replayed on a
// recorded trace: at iteration Start the fault-free nodes are split at the
// midpoint of their range; Lemma 2 guarantees one side propagates to the
// other in Len steps; Lemma 5 then bounds the range contraction over those
// Len rounds by Bound = 1 − α^Len/2.
type PhaseRecord struct {
	// Start is the iteration s the phase begins at.
	Start int
	// Len is l(s), the measured propagation length of the midpoint split.
	Len int
	// RSide reports which side of the split propagated: "low" or "high".
	RSide string
	// RangeStart and RangeEnd are U−µ at s and s+l(s).
	RangeStart, RangeEnd float64
	// Factor is RangeEnd/RangeStart; Bound is the Lemma 5 guarantee;
	// Within is Factor ≤ Bound (up to floating-point slack).
	Factor, Bound float64
	Within        bool
}

// String renders the record compactly.
func (p PhaseRecord) String() string {
	return fmt.Sprintf("s=%d l=%d R=%s range %.3g→%.3g factor=%.4f bound=%.4f within=%v",
		p.Start, p.Len, p.RSide, p.RangeStart, p.RangeEnd, p.Factor, p.Bound, p.Within)
}

// PhaseTrace replays Theorem 3 on a trace recorded with RecordStates: it
// walks s = 0, s+l(0), s+l(0)+l(1), ... computing each phase's actual
// propagation length via the Lemma 2 dichotomy and checking the Lemma 5
// contraction (equation (21)) against the measurement. The walk stops when
// the range falls below floor or the next phase would overrun the trace.
//
// A phase with Within == false would falsify Lemma 5 — the test suite
// asserts this never happens for Algorithm 1 on condition-satisfying
// graphs.
func PhaseTrace(g *graph.Graph, f int, tr *sim.Trace, floor float64) ([]PhaseRecord, error) {
	if tr.States == nil {
		return nil, errors.New("analysis: trace was recorded without RecordStates")
	}
	alpha, err := Alpha(g, f)
	if err != nil {
		return nil, err
	}
	var phases []PhaseRecord
	s := 0
	for {
		if tr.Range(s) <= floor {
			return phases, nil
		}
		a, b := SplitAtMidpoint(tr.States[s], tr.FaultFree)
		if a.Empty() || b.Empty() {
			return phases, nil // all states coincide to float precision
		}
		dir, p, ok, err := condition.EitherPropagates(g, a, b, condition.SyncThreshold(f))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, errors.New("analysis: Lemma 2 dichotomy failed — graph violates Theorem 1")
		}
		// In the paper's naming the propagating side is R; A holds the low
		// half of the split.
		rSide := "low"
		if dir == "B→A" {
			rSide = "high"
		}
		if s+p.Steps > tr.Rounds {
			return phases, nil // phase extends past the recorded trace
		}
		rec := PhaseRecord{
			Start:      s,
			Len:        p.Steps,
			RSide:      rSide,
			RangeStart: tr.Range(s),
			RangeEnd:   tr.Range(s + p.Steps),
			Bound:      ContractionBound(alpha, p.Steps),
		}
		rec.Factor = rec.RangeEnd / rec.RangeStart
		rec.Within = rec.Factor <= rec.Bound+1e-9
		phases = append(phases, rec)
		s += p.Steps
	}
}
