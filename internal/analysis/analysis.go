// Package analysis quantifies convergence: the weight parameter α of
// equation (3), the per-phase contraction bound of Lemma 5, the
// rounds-to-ε bound implied by Theorem 3's proof, empirical contraction
// measurement on traces, and — for the f = 0 special case the paper notes
// is a Markov chain — the transition-matrix view with a spectral estimate.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/graph"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
)

// Alpha returns α = min_i a_i = min_i 1/(|N⁻_i| + 1 − 2f) (equation (3)).
// It errors if any node's in-degree is below 2f+1 (Corollary 3): the weight
// would be undefined or useless.
func Alpha(g *graph.Graph, f int) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("analysis: negative f %d", f)
	}
	alpha := 1.0
	for i := 0; i < g.N(); i++ {
		d := g.InDegree(i)
		if f > 0 && d < 2*f+1 {
			return 0, fmt.Errorf("analysis: node %d in-degree %d < 2f+1 = %d: %w", i, d, 2*f+1, core.ErrInsufficientValues)
		}
		if f == 0 && d < 1 {
			return 0, fmt.Errorf("analysis: node %d has no in-neighbors: %w", i, core.ErrInsufficientValues)
		}
		if a := core.Weight(d, f); a < alpha {
			alpha = a
		}
	}
	return alpha, nil
}

// AlphaAsync is Alpha for the Section 7 asynchronous algorithm, where the
// received vector has |N⁻_i| − f entries: α = min_i 1/(|N⁻_i| − 3f + 1).
// It errors if any in-degree is below 3f+1.
func AlphaAsync(g *graph.Graph, f int) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("analysis: negative f %d", f)
	}
	alpha := 1.0
	for i := 0; i < g.N(); i++ {
		d := g.InDegree(i)
		if d < 3*f+1 {
			return 0, fmt.Errorf("analysis: node %d in-degree %d < 3f+1 = %d: %w", i, d, 3*f+1, core.ErrInsufficientValues)
		}
		if a := core.Weight(d-f, f); a < alpha {
			alpha = a
		}
	}
	return alpha, nil
}

// WorstCaseSteps returns the paper's upper bound on the propagation length
// l of Definition 3: l ≤ n − f − 1 (a propagating set has at least f+1
// nodes and grows by one per step at minimum).
func WorstCaseSteps(n, f int) int { return n - f - 1 }

// ContractionBound returns the Lemma 5 factor (1 − αˡ/2): after the l
// rounds of one propagation phase, U − µ shrinks by at least this factor.
func ContractionBound(alpha float64, l int) float64 {
	return 1 - math.Pow(alpha, float64(l))/2
}

// RoundsToEpsilonBound returns the worst-case number of rounds for
// U[t] − µ[t] ≤ eps implied by Theorem 3's proof: phases of length
// l = n−f−1, each contracting by (1 − αˡ/2). Returns 0 if initialRange is
// already ≤ eps; errors on non-positive eps or initialRange < 0, or if the
// contraction factor is not < 1.
func RoundsToEpsilonBound(n, f int, alpha, initialRange, eps float64) (int, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("analysis: eps must be > 0, got %g", eps)
	}
	if initialRange < 0 {
		return 0, fmt.Errorf("analysis: negative initial range %g", initialRange)
	}
	if initialRange <= eps {
		return 0, nil
	}
	l := WorstCaseSteps(n, f)
	if l < 1 {
		return 0, fmt.Errorf("analysis: degenerate worst-case step count %d (n=%d, f=%d)", l, n, f)
	}
	gamma := ContractionBound(alpha, l)
	if gamma >= 1 {
		return 0, fmt.Errorf("analysis: contraction factor %g not < 1 (alpha=%g, l=%d)", gamma, alpha, l)
	}
	phases := int(math.Ceil(math.Log(eps/initialRange) / math.Log(gamma)))
	if phases < 1 {
		phases = 1
	}
	return phases * l, nil
}

// MeasureContraction returns the worst observed l-round contraction factor
// over a trace: max over s of Range(s+l)/Range(s), ignoring windows whose
// starting range is below floor (to avoid numerical noise near convergence).
// Returns NaN if no window qualifies.
func MeasureContraction(t *sim.Trace, l int, floor float64) float64 {
	worst := math.NaN()
	for s := 0; s+l <= t.Rounds; s++ {
		r0 := t.Range(s)
		if r0 <= floor {
			continue
		}
		ratio := t.Range(s+l) / r0
		if math.IsNaN(worst) || ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// EmpiricalRate fits a geometric convergence rate to a trace: the per-round
// factor (Range(T)/Range(0))^(1/T). Returns NaN for degenerate traces
// (no rounds, zero initial range, or zero final range — the latter means
// convergence outpaced float precision, an effective rate of 0).
func EmpiricalRate(t *sim.Trace) float64 {
	if t.Rounds == 0 || t.Range(0) <= 0 {
		return math.NaN()
	}
	final := t.Range(t.Rounds)
	if final <= 0 {
		return 0
	}
	return math.Pow(final/t.Range(0), 1/float64(t.Rounds))
}

// SplitAtMidpoint partitions the fault-free nodes by their state relative
// to the midpoint (U+µ)/2 — the A/B split used in the proof of Theorem 3.
// A holds nodes with state < midpoint, B the rest. Either may be empty if
// all states coincide.
func SplitAtMidpoint(states []float64, faultFree nodeset.Set) (a, b nodeset.Set) {
	lo, hi := math.Inf(1), math.Inf(-1)
	faultFree.ForEach(func(i int) bool {
		if states[i] < lo {
			lo = states[i]
		}
		if states[i] > hi {
			hi = states[i]
		}
		return true
	})
	mid := (lo + hi) / 2
	a = nodeset.New(faultFree.Cap())
	b = nodeset.New(faultFree.Cap())
	faultFree.ForEach(func(i int) bool {
		if states[i] < mid {
			a.Add(i)
		} else {
			b.Add(i)
		}
		return true
	})
	return a, b
}

// PhaseLength runs the Lemma 2 dichotomy on the Theorem 3 midpoint split:
// it returns the number of steps l(s) in which one side propagates to the
// other (R → L in the paper's naming), and which side was R ("low" or
// "high"). Errors if either side of the split is empty or — impossible on a
// Theorem 1-satisfying graph — neither side propagates.
func PhaseLength(g *graph.Graph, f int, states []float64, faultFree nodeset.Set) (l int, r string, err error) {
	a, b := SplitAtMidpoint(states, faultFree)
	if a.Empty() || b.Empty() {
		return 0, "", errors.New("analysis: midpoint split degenerate (states identical)")
	}
	dir, p, ok, err := condition.EitherPropagates(g, a, b, condition.SyncThreshold(f))
	if err != nil {
		return 0, "", err
	}
	if !ok {
		return 0, "", errors.New("analysis: neither side propagates — graph violates Theorem 1")
	}
	if dir == "A→B" {
		return p.Steps, "low", nil
	}
	return p.Steps, "high", nil
}

// TransitionMatrix returns the row-stochastic matrix P of the f = 0 mean
// iteration, x[t] = P·x[t−1]: row i places weight 1/(|N⁻_i|+1) on i and on
// each in-neighbor. The paper observes the state evolution is a Markov
// chain; this is its kernel.
func TransitionMatrix(g *graph.Graph) [][]float64 {
	n := g.N()
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		w := core.Weight(g.InDegree(i), 0)
		p[i][i] = w
		for _, j := range g.InNeighbors(i) {
			p[i][j] = w
		}
	}
	return p
}

// SLEMEstimate estimates the second-largest eigenvalue modulus of a
// row-stochastic matrix — the asymptotic per-round contraction of the f = 0
// iteration — by power iteration on the disagreement component: iterate
// y ← P·y from a random start and average the tail ratios of the value
// range (max−min), which is invariant to the consensus component.
func SLEMEstimate(p [][]float64, iters int, rng *rand.Rand) float64 {
	n := len(p)
	if n == 0 || iters < 4 {
		return math.NaN()
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.Float64()
	}
	spread := func(v []float64) float64 {
		lo, hi := core.RangeOf(v)
		return hi - lo
	}
	// Renormalize the disagreement component every step (subtract the mean,
	// rescale to unit spread): P maps constants to constants, so this keeps
	// the iteration on the disagreement subspace and away from the floating
	// point cancellation floor that a raw iteration hits once the spread
	// shrinks below the consensus value's rounding granularity.
	normalize := func(v []float64) bool {
		mean := 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(n)
		s := spread(v)
		if s <= 1e-300 {
			return false
		}
		for i := range v {
			v[i] = (v[i] - mean) / s
		}
		return true
	}
	next := make([]float64, n)
	var ratios []float64
	for it := 0; it < iters; it++ {
		if !normalize(y) {
			ratios = append(ratios, 0)
			break
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += p[i][j] * y[j]
			}
			next[i] = s
		}
		// y now has unit spread, so next's spread IS the contraction ratio.
		ratios = append(ratios, spread(next))
		y, next = next, y
	}
	if len(ratios) == 0 {
		return math.NaN()
	}
	// Geometric mean of the second half (transient decayed).
	tail := ratios[len(ratios)/2:]
	logSum := 0.0
	for _, r := range tail {
		if r <= 0 {
			return 0
		}
		logSum += math.Log(r)
	}
	return math.Exp(logSum / float64(len(tail)))
}
