package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

func TestPhaseTraceHonorsLemma5(t *testing.T) {
	// Replay Theorem 3's induction on real traces: every phase must
	// contract at least as much as (1 − α^{l(s)}/2).
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		faulty := nodeset.New(tc.n)
		for i := 0; i < tc.f; i++ {
			faulty.Add(i)
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: tc.f, Faulty: faulty,
			Initial:   workload.Bimodal(tc.n, 0, 1),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Hug{High: true},
			MaxRounds: 500, Epsilon: 1e-9, RecordStates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		phases, err := PhaseTrace(g, tc.f, tr, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		if len(phases) == 0 {
			t.Fatalf("n=%d f=%d: no phases recorded", tc.n, tc.f)
		}
		for _, p := range phases {
			if !p.Within {
				t.Errorf("n=%d f=%d: phase violates Lemma 5: %v", tc.n, tc.f, p)
			}
			if p.Len < 1 || p.Len > WorstCaseSteps(tc.n, tc.f) {
				t.Errorf("n=%d f=%d: phase length %d outside [1,%d]", tc.n, tc.f, p.Len, WorstCaseSteps(tc.n, tc.f))
			}
			if p.RSide != "low" && p.RSide != "high" {
				t.Errorf("bad RSide %q", p.RSide)
			}
		}
		// Phases must tile the trace: consecutive starts differ by Len.
		for i := 1; i < len(phases); i++ {
			if phases[i].Start != phases[i-1].Start+phases[i-1].Len {
				t.Errorf("phase %d starts at %d, want %d", i, phases[i].Start, phases[i-1].Start+phases[i-1].Len)
			}
		}
	}
}

func TestPhaseTraceRandomGraphs(t *testing.T) {
	// Same property on random Theorem 1-satisfying graphs.
	rng := rand.New(rand.NewSource(71))
	tested := 0
	for trial := 0; trial < 40 && tested < 8; trial++ {
		n := 5 + rng.Intn(4)
		g, err := topology.RandomDigraph(n, 0.85, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinInDegree() < 3 {
			continue
		}
		if _, err := Alpha(g, 1); err != nil {
			continue
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(n, n-1),
			Initial:   workload.Uniform(n, 0, 1, rng),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 5},
			MaxRounds: 400, Epsilon: 1e-9, RecordStates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		phases, err := PhaseTrace(g, 1, tr, 1e-8)
		if err != nil {
			// Dichotomy failure means the random graph violates Theorem 1 —
			// skip, that is E1 territory.
			if strings.Contains(err.Error(), "violates") {
				continue
			}
			t.Fatal(err)
		}
		tested++
		for _, p := range phases {
			if !p.Within {
				t.Errorf("phase violates Lemma 5 on random graph: %v\n%s", p, g.EdgeListString())
			}
		}
	}
	if tested < 3 {
		t.Fatalf("only %d random graphs exercised", tested)
	}
}

func TestPhaseTraceRequiresStates(t *testing.T) {
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g, F: 1, Initial: workload.Ramp(4),
		Rule: core.TrimmedMean{}, MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PhaseTrace(g, 1, tr, 0); err == nil {
		t.Fatal("missing RecordStates should error")
	}
}

func TestPhaseRecordString(t *testing.T) {
	p := PhaseRecord{Start: 3, Len: 2, RSide: "low", RangeStart: 1, RangeEnd: 0.5, Factor: 0.5, Bound: 0.875, Within: true}
	s := p.String()
	for _, want := range []string{"s=3", "l=2", "R=low", "within=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
