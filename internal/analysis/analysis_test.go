package analysis

import (
	"math"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

func TestAlpha(t *testing.T) {
	k4, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	// K4, f=1: every in-degree 3, a = 1/(3+1-2) = 1/2.
	a, err := Alpha(k4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.5) > 1e-15 {
		t.Errorf("Alpha(K4,1) = %v, want 0.5", a)
	}
	// CoreNetwork(7,2): core in-degree 6 → 1/3; peripheral 5 → 1/2. α = 1/3.
	cn, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err = Alpha(cn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1.0/3.0) > 1e-15 {
		t.Errorf("Alpha(core(7,2)) = %v, want 1/3", a)
	}
	// f = 0 on a cycle: in-degree 1 → 1/2.
	cyc, err := topology.DirectedCycle(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err = Alpha(cyc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.5) > 1e-15 {
		t.Errorf("Alpha(cycle,0) = %v, want 0.5", a)
	}
}

func TestAlphaErrors(t *testing.T) {
	ring, err := topology.UndirectedRing(6) // in-degree 2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Alpha(ring, 1); err == nil {
		t.Error("in-degree 2 < 2f+1 should error")
	}
	if _, err := Alpha(ring, -1); err == nil {
		t.Error("negative f should error")
	}
	star, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = star
}

func TestAlphaAsync(t *testing.T) {
	k7, err := topology.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	// K7, f=1: quorum vector has 6-1=5 entries, a = 1/(5+1-2) = 1/4.
	a, err := AlphaAsync(k7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.25) > 1e-15 {
		t.Errorf("AlphaAsync(K7,1) = %v, want 0.25", a)
	}
	k4, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AlphaAsync(k4, 1); err == nil {
		t.Error("in-degree 3 < 3f+1 = 4 should error")
	}
	if _, err := AlphaAsync(k7, -1); err == nil {
		t.Error("negative f should error")
	}
}

func TestContractionBound(t *testing.T) {
	if got := ContractionBound(1, 1); got != 0.5 {
		t.Errorf("ContractionBound(1,1) = %v, want 0.5", got)
	}
	if got := ContractionBound(0.5, 2); math.Abs(got-(1-0.25/2)) > 1e-15 {
		t.Errorf("ContractionBound(0.5,2) = %v, want 0.875", got)
	}
	// Longer propagation ⇒ weaker contraction.
	if ContractionBound(0.5, 3) <= ContractionBound(0.5, 2) {
		t.Error("bound should increase with l")
	}
}

func TestWorstCaseSteps(t *testing.T) {
	if got := WorstCaseSteps(7, 2); got != 4 {
		t.Errorf("WorstCaseSteps(7,2) = %d, want 4", got)
	}
}

func TestRoundsToEpsilonBound(t *testing.T) {
	rounds, err := RoundsToEpsilonBound(7, 2, 1.0/3.0, 10, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Fatalf("rounds = %d, want positive", rounds)
	}
	// Tighter epsilon cannot need fewer rounds.
	tighter, err := RoundsToEpsilonBound(7, 2, 1.0/3.0, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if tighter < rounds {
		t.Errorf("tighter eps needs %d < %d rounds", tighter, rounds)
	}
	// Already converged.
	zero, err := RoundsToEpsilonBound(7, 2, 1.0/3.0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("already-converged bound = %d, want 0", zero)
	}
	if _, err := RoundsToEpsilonBound(7, 2, 1.0/3.0, 10, 0); err == nil {
		t.Error("eps = 0 should error")
	}
	if _, err := RoundsToEpsilonBound(7, 2, 1.0/3.0, -1, 1); err == nil {
		t.Error("negative range should error")
	}
	if _, err := RoundsToEpsilonBound(2, 1, 0.5, 10, 1); err == nil {
		t.Error("degenerate l should error")
	}
}

// TestLemma5BoundHoldsEmpirically is the heart of E7: the measured worst
// l-round contraction on a core network under the hug adversary must not
// exceed the Lemma 5 bound (1 − αˡ/2) with l = n−f−1.
func TestLemma5BoundHoldsEmpirically(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		faulty := nodeset.New(tc.n)
		for i := 0; i < tc.f; i++ {
			faulty.Add(i)
		}
		initial := make([]float64, tc.n)
		for i := range initial {
			initial[i] = float64(i % 2) // adversarially split inputs
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: tc.f, Faulty: faulty, Initial: initial,
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Hug{High: true},
			MaxRounds: 400, Epsilon: 1e-10,
		})
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := Alpha(g, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		l := WorstCaseSteps(tc.n, tc.f)
		bound := ContractionBound(alpha, l)
		measured := MeasureContraction(tr, l, 1e-9)
		if math.IsNaN(measured) {
			t.Fatalf("n=%d f=%d: no qualifying window", tc.n, tc.f)
		}
		if measured > bound+1e-9 {
			t.Errorf("n=%d f=%d: measured %v exceeds Lemma 5 bound %v", tc.n, tc.f, measured, bound)
		}
	}
}

func TestMeasureContractionEdgeCases(t *testing.T) {
	tr := &sim.Trace{Rounds: 1, U: []float64{1, 1}, Mu: []float64{0, 0.5}}
	got := MeasureContraction(tr, 1, 0)
	if math.Abs(got-0.5) > 1e-15 {
		t.Errorf("contraction = %v, want 0.5", got)
	}
	if !math.IsNaN(MeasureContraction(tr, 5, 0)) {
		t.Error("window longer than trace should give NaN")
	}
	flat := &sim.Trace{Rounds: 2, U: []float64{1, 1, 1}, Mu: []float64{1, 1, 1}}
	if !math.IsNaN(MeasureContraction(flat, 1, 1e-9)) {
		t.Error("all-below-floor trace should give NaN")
	}
}

func TestEmpiricalRate(t *testing.T) {
	tr := &sim.Trace{Rounds: 2, U: []float64{4, 2, 1}, Mu: []float64{0, 0, 0}}
	if got := EmpiricalRate(tr); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rate = %v, want 0.5", got)
	}
	if !math.IsNaN(EmpiricalRate(&sim.Trace{Rounds: 0, U: []float64{1}, Mu: []float64{0}})) {
		t.Error("zero-round trace should give NaN")
	}
	exact := &sim.Trace{Rounds: 1, U: []float64{1, 0}, Mu: []float64{0, 0}}
	if got := EmpiricalRate(exact); got != 0 {
		t.Errorf("instant convergence rate = %v, want 0", got)
	}
}

func TestSplitAtMidpoint(t *testing.T) {
	states := []float64{0, 1, 9, 10}
	ff := nodeset.Universe(4)
	a, b := SplitAtMidpoint(states, ff)
	if !a.Equal(nodeset.FromMembers(4, 0, 1)) {
		t.Errorf("A = %v, want {0,1}", a)
	}
	if !b.Equal(nodeset.FromMembers(4, 2, 3)) {
		t.Errorf("B = %v, want {2,3}", b)
	}
	// Faulty nodes excluded from the split.
	ff2 := nodeset.FromMembers(4, 0, 3)
	a2, b2 := SplitAtMidpoint(states, ff2)
	if a2.Count()+b2.Count() != 2 {
		t.Errorf("split covers %d nodes, want 2", a2.Count()+b2.Count())
	}
}

func TestPhaseLength(t *testing.T) {
	g, err := topology.CoreNetwork(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	states := []float64{0, 0, 0, 1, 1, 1, 1}
	ff := nodeset.Universe(7)
	l, side, err := PhaseLength(g, 2, states, ff)
	if err != nil {
		t.Fatal(err)
	}
	if l < 1 || l > WorstCaseSteps(7, 2) {
		t.Errorf("l = %d outside [1, %d]", l, WorstCaseSteps(7, 2))
	}
	if side != "low" && side != "high" {
		t.Errorf("side = %q", side)
	}
	// Degenerate: identical states.
	if _, _, err := PhaseLength(g, 2, make([]float64, 7), ff); err == nil {
		t.Error("identical states should error")
	}
}

func TestTransitionMatrix(t *testing.T) {
	g, err := topology.DirectedCycle(4)
	if err != nil {
		t.Fatal(err)
	}
	p := TransitionMatrix(g)
	for i, row := range p {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Cycle: node 1 hears node 0 and itself, weight 1/2 each.
	if p[1][0] != 0.5 || p[1][1] != 0.5 || p[1][2] != 0 {
		t.Errorf("row 1 = %v", p[1])
	}
}

func TestSLEMEstimateRing(t *testing.T) {
	// Undirected ring: P has eigenvalues (1+2cos(2πk/n))/3; SLEM for n=8 is
	// (1+2cos(π/4))/3 ≈ 0.8047.
	n := 8
	g, err := topology.UndirectedRing(n)
	if err != nil {
		t.Fatal(err)
	}
	p := TransitionMatrix(g)
	got := SLEMEstimate(p, 600, rand.New(rand.NewSource(17)))
	want := (1 + 2*math.Cos(2*math.Pi/float64(n))) / 3
	if math.Abs(got-want) > 0.01 {
		t.Errorf("SLEM = %v, want ≈ %v", got, want)
	}
}

func TestSLEMEstimateCompleteGraphIsZero(t *testing.T) {
	g, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	p := TransitionMatrix(g)
	got := SLEMEstimate(p, 50, rand.New(rand.NewSource(18)))
	if got > 1e-9 {
		t.Errorf("SLEM of K6 = %v, want ≈ 0 (one-round consensus)", got)
	}
}

func TestSLEMEstimateDegenerate(t *testing.T) {
	if !math.IsNaN(SLEMEstimate(nil, 100, rand.New(rand.NewSource(1)))) {
		t.Error("empty matrix should give NaN")
	}
	if !math.IsNaN(SLEMEstimate([][]float64{{1}}, 2, rand.New(rand.NewSource(1)))) {
		t.Error("too few iters should give NaN")
	}
}

// TestEmpiricalRateMatchesSLEMForF0 ties the Markov view to the dynamics:
// on a strongly connected graph with f=0, the fitted geometric rate should
// approach the SLEM estimate.
func TestEmpiricalRateMatchesSLEMForF0(t *testing.T) {
	g, err := topology.UndirectedRing(8)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]float64, 8)
	for i := range initial {
		initial[i] = rand.New(rand.NewSource(int64(i + 1))).Float64()
	}
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g, F: 0, Initial: initial, Rule: core.TrimmedMean{},
		MaxRounds: 60, Epsilon: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := EmpiricalRate(tr)
	slem := SLEMEstimate(TransitionMatrix(g), 600, rand.New(rand.NewSource(19)))
	if math.Abs(rate-slem) > 0.05 {
		t.Errorf("empirical rate %v vs SLEM %v", rate, slem)
	}
}
