package experiments

import (
	"fmt"
	"math"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E1Result reproduces Theorem 1's necessity construction (Fig. 1): on a
// graph violating the condition, the proof's adversary freezes L at m and R
// at M forever, so consensus is impossible.
type E1Result struct {
	// GraphName, N, F describe the violating instance (the paper's
	// Chord(7,2) counterexample).
	GraphName string
	N, F      int
	// Witness is the violating partition found by the exact checker.
	Witness *condition.Witness
	// Rounds is how long the attack was run.
	Rounds int
	// LValue and RValue are the (constant) states of L and R nodes at the
	// end; Frozen is whether they never moved off m and M.
	LValue, RValue float64
	Frozen         bool
	// FinalRange is U − µ after Rounds iterations (should equal M − m).
	FinalRange float64
}

// Title implements Report.
func (*E1Result) Title() string {
	return "E1 — Theorem 1 necessity (Fig. 1): partition attack freezes a violating graph"
}

// Table implements Report.
func (r *E1Result) Table() string {
	return table(
		[]string{"graph", "n", "f", "witness", "rounds", "L stuck at", "R stuck at", "range", "frozen"},
		[][]string{{
			r.GraphName,
			fmt.Sprint(r.N), fmt.Sprint(r.F),
			r.Witness.String(),
			fmt.Sprint(r.Rounds),
			fmt.Sprintf("%g", r.LValue), fmt.Sprintf("%g", r.RValue),
			fmt.Sprintf("%g", r.FinalRange),
			yes(r.Frozen),
		}},
	)
}

// E1Theorem1Attack runs the construction: find a violating partition of
// Chord(7,2) with the exact checker, seed L with m = 0 and R with M = 1,
// make F Byzantine with the proof's split-value strategy, and verify that
// after 500 iterations every L node still holds exactly m and every R node
// exactly M.
func E1Theorem1Attack() (*E1Result, error) {
	const (
		n, f   = 7, 2
		m, M   = 0.0, 1.0
		rounds = 500
	)
	g, err := topology.Chord(n, f)
	if err != nil {
		return nil, err
	}
	res, err := condition.Check(g, f)
	if err != nil {
		return nil, err
	}
	if res.Satisfied {
		return nil, fmt.Errorf("experiments: Chord(%d,%d) unexpectedly satisfies Theorem 1", n, f)
	}
	w := res.Witness
	if err := w.Verify(g, f, condition.SyncThreshold(f)); err != nil {
		return nil, fmt.Errorf("experiments: witness failed verification: %w", err)
	}

	initial := make([]float64, n)
	w.L.ForEach(func(i int) bool { initial[i] = m; return true })
	w.R.ForEach(func(i int) bool { initial[i] = M; return true })
	w.C.ForEach(func(i int) bool { initial[i] = (m + M) / 2; return true })

	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g, F: f, Faulty: w.F.Clone(), Initial: initial,
		Rule: core.TrimmedMean{},
		Adversary: adversary.PartitionAttack{
			L: w.L, R: w.R, Low: m, High: M, Eps: 0.5,
		},
		MaxRounds: rounds,
	})
	if err != nil {
		return nil, err
	}

	frozen := true
	w.L.ForEach(func(i int) bool {
		if math.Abs(tr.Final[i]-m) > 0 {
			frozen = false
		}
		return true
	})
	w.R.ForEach(func(i int) bool {
		if math.Abs(tr.Final[i]-M) > 0 {
			frozen = false
		}
		return true
	})
	return &E1Result{
		GraphName:  fmt.Sprintf("chord(n=%d,f=%d)", n, f),
		N:          n,
		F:          f,
		Witness:    w,
		Rounds:     tr.Rounds,
		LValue:     m,
		RValue:     M,
		Frozen:     frozen,
		FinalRange: tr.FinalRange(),
	}, nil
}

// faultySetOfSize returns {0, ..., k-1} as a fault set over n nodes —
// shared by several experiments that place faults in the "hardest" spots
// (core members).
func faultySetOfSize(n, k int) nodeset.Set {
	s := nodeset.New(n)
	for i := 0; i < k; i++ {
		s.Add(i)
	}
	return s
}
