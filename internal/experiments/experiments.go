// Package experiments reproduces, one function per artifact, every claim of
// the paper's technical sections: the Theorem 1 impossibility construction
// (Fig. 1), the corollaries, the Section 6 case studies (core network,
// hypercube/Fig. 3, chord), the Lemma 5/Theorem 3 convergence-rate bounds,
// the Section 7 asynchronous extension, and the ablations that justify the
// design (trimming vs. plain averaging).
//
// Each Ek function is deterministic, returns a typed result struct whose
// fields are asserted by the test suite, and renders a human-readable table
// via Table(). cmd/iabc experiments prints all of them; EXPERIMENTS.md
// records paper-claim vs. measured outcome per experiment.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"iabc/internal/analysis"
	"iabc/internal/graph"
)

// alphaOf and roundsBound are thin aliases keeping the experiment files
// terse.
func alphaOf(g *graph.Graph, f int) (float64, error) { return analysis.Alpha(g, f) }

func roundsBound(n, f int, alpha, initialRange, eps float64) (int, error) {
	return analysis.RoundsToEpsilonBound(n, f, alpha, initialRange, eps)
}

// ramp returns the canonical initial condition 0, 1, ..., n-1: maximal
// disagreement with unit steps.
func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// Report is implemented by every experiment result.
type Report interface {
	// Title names the experiment and the paper artifact it reproduces.
	Title() string
	// Table renders the measured results.
	Table() string
}

// yes renders a boolean as a compact table cell.
func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RunAll executes every experiment in order and writes the reports to w.
// It stops at the first failing experiment.
func RunAll(w io.Writer) error {
	runs := []func() (Report, error){
		func() (Report, error) { return E1Theorem1Attack() },
		func() (Report, error) { return E2Corollary2() },
		func() (Report, error) { return E3Corollary3() },
		func() (Report, error) { return E4Hypercube() },
		func() (Report, error) { return E5CoreNetwork() },
		func() (Report, error) { return E6Chord() },
		func() (Report, error) { return E7ConvergenceRate() },
		func() (Report, error) { return E8Async() },
		func() (Report, error) { return E9RuleAblation() },
		func() (Report, error) { return E10Scaling() },
		func() (Report, error) { return E11Conjecture() },
		func() (Report, error) { return E12Density() },
		func() (Report, error) { return E13Connectivity() },
		func() (Report, error) { return E14ReducedCrossCheck() },
		func() (Report, error) { return E15Delayed() },
	}
	for _, run := range runs {
		rep, err := run()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n%s\n", rep.Title(), rep.Table()); err != nil {
			return err
		}
	}
	return nil
}
