package experiments

import (
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/topology"
)

// E13Result quantifies the paper's repeated remark (Sections 6.2, 6.3) that
// classical connectivity does not capture iterative consensus: undirected
// connectivity > 2f suffices for *non-iterative* algorithms [12], so a
// graph with vertex connectivity κ would "classically" tolerate
// f_κ = ⌈κ/2⌉ − 1 faults — yet the iterative family's true tolerance is
// MaxF under Theorem 1, which can be far lower.
type E13Result struct {
	Rows []E13Row
}

// E13Row is one graph's connectivity-vs-condition comparison.
type E13Row struct {
	Graph string
	N     int
	// Kappa is the vertex connectivity κ.
	Kappa int
	// ClassicalF is the fault tolerance connectivity alone would promise a
	// non-iterative algorithm: the largest f with κ > 2f.
	ClassicalF int
	// IterativeF is MaxF — the true tolerance of the iterative family.
	IterativeF int
	// Gap is ClassicalF − IterativeF.
	Gap int
}

// Title implements Report.
func (*E13Result) Title() string {
	return "E13 — connectivity is not sufficient: κ-based tolerance vs the tight condition"
}

// Table implements Report.
func (r *E13Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.N), fmt.Sprint(row.Kappa),
			fmt.Sprint(row.ClassicalF), fmt.Sprint(row.IterativeF), fmt.Sprint(row.Gap),
		})
	}
	return table([]string{"graph", "n", "κ", "classical f (κ>2f)", "iterative f (Thm 1)", "gap"}, rows)
}

// E13Connectivity compares the two notions on the paper's menagerie.
func E13Connectivity() (*E13Result, error) {
	res := &E13Result{}
	add := func(name string, g *graph.Graph) error {
		kappa := g.VertexConnectivity()
		classical := 0
		if kappa > 0 {
			classical = (kappa - 1) / 2
		}
		iterative, err := condition.MaxF(g)
		if err != nil {
			return err
		}
		if iterative < 0 {
			iterative = 0 // report floor; "-1" means not even f=0
		}
		res.Rows = append(res.Rows, E13Row{
			Graph: name, N: g.N(), Kappa: kappa,
			ClassicalF: classical, IterativeF: iterative,
			Gap: classical - iterative,
		})
		return nil
	}

	cube3, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	if err := add("hypercube d=3", cube3); err != nil {
		return nil, err
	}
	cube4, err := topology.Hypercube(4)
	if err != nil {
		return nil, err
	}
	if err := add("hypercube d=4", cube4); err != nil {
		return nil, err
	}
	chord72, err := topology.Chord(7, 2)
	if err != nil {
		return nil, err
	}
	if err := add("chord(7,2)", chord72); err != nil {
		return nil, err
	}
	core72, err := topology.CoreNetwork(7, 2)
	if err != nil {
		return nil, err
	}
	if err := add("core(7,2)", core72); err != nil {
		return nil, err
	}
	k7, err := topology.Complete(7)
	if err != nil {
		return nil, err
	}
	if err := add("K7", k7); err != nil {
		return nil, err
	}
	bip, err := topology.CompleteBipartite(5, 5)
	if err != nil {
		return nil, err
	}
	if err := add("K_{5,5}", bip); err != nil {
		return nil, err
	}
	return res, nil
}

// Passed asserts the paper's headline: some graph shows a strictly positive
// gap (connectivity over-promises), while core networks and complete graphs
// show none.
func (r *E13Result) Passed() bool {
	gapSeen := false
	for _, row := range r.Rows {
		if row.Gap < 0 {
			return false // the condition can never beat connectivity
		}
		if row.Gap > 0 {
			gapSeen = true
		}
		if (row.Graph == "core(7,2)" || row.Graph == "K7") && row.Gap != 0 {
			return false
		}
	}
	return gapSeen && len(r.Rows) > 0
}
