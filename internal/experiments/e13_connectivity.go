package experiments

import (
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/topology"
)

// E13Result quantifies the paper's repeated remark (Sections 6.2, 6.3) that
// classical connectivity does not capture iterative consensus: undirected
// connectivity > 2f suffices for *non-iterative* algorithms [12], so a
// graph with vertex connectivity κ would "classically" tolerate
// f_κ = ⌈κ/2⌉ − 1 faults — yet the iterative family's true tolerance is
// MaxF under Theorem 1, which can be far lower.
type E13Result struct {
	Rows []E13Row
}

// E13Row is one graph's connectivity-vs-condition comparison, with the exact
// checker's work counters for the MaxF scan — the scaling record that shows
// what degree-bound pruning buys as n grows (condition.MaxFWithStats).
type E13Row struct {
	Graph string
	N     int
	// Kappa is the vertex connectivity κ.
	Kappa int
	// ClassicalF is the fault tolerance connectivity alone would promise a
	// non-iterative algorithm: the largest f with κ > 2f.
	ClassicalF int
	// IterativeF is MaxF — the true tolerance of the iterative family.
	IterativeF int
	// Gap is ClassicalF − IterativeF.
	Gap int
	// Candidates and Pruned are the MaxF scan's accumulated candidate count
	// and the share of it skipped unvisited by the degree lower bound;
	// MemoHits counts complement peels the empty-complement memo avoided.
	Candidates, Pruned, MemoHits int64
}

// Title implements Report.
func (*E13Result) Title() string {
	return "E13 — connectivity is not sufficient: κ-based tolerance vs the tight condition"
}

// Table implements Report.
func (r *E13Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		prunedPct := "0.0%"
		if row.Candidates > 0 {
			prunedPct = fmt.Sprintf("%.1f%%", 100*float64(row.Pruned)/float64(row.Candidates))
		}
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.N), fmt.Sprint(row.Kappa),
			fmt.Sprint(row.ClassicalF), fmt.Sprint(row.IterativeF), fmt.Sprint(row.Gap),
			fmt.Sprint(row.Candidates), prunedPct, fmt.Sprint(row.MemoHits),
		})
	}
	return table([]string{"graph", "n", "κ", "classical f (κ>2f)", "iterative f (Thm 1)", "gap", "cand sets", "pruned", "memo"}, rows)
}

// E13Connectivity compares the two notions on the paper's menagerie, plus
// two checker-scaling rows — chord(16,2) and core(16,2), sizes the unpruned
// enumeration made painfully slow — whose work columns record what the
// degree-bound pruning skips.
func E13Connectivity() (*E13Result, error) {
	res := &E13Result{}
	add := func(name string, g *graph.Graph) error {
		kappa := g.VertexConnectivity()
		classical := 0
		if kappa > 0 {
			classical = (kappa - 1) / 2
		}
		iterative, stats, err := condition.MaxFWithStats(g)
		if err != nil {
			return err
		}
		if iterative < 0 {
			iterative = 0 // report floor; "-1" means not even f=0
		}
		res.Rows = append(res.Rows, E13Row{
			Graph: name, N: g.N(), Kappa: kappa,
			ClassicalF: classical, IterativeF: iterative,
			Gap:        classical - iterative,
			Candidates: stats.CandidatesExamined,
			Pruned:     stats.CandidatesPruned,
			MemoHits:   stats.MemoHits,
		})
		return nil
	}

	cube3, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	if err := add("hypercube d=3", cube3); err != nil {
		return nil, err
	}
	cube4, err := topology.Hypercube(4)
	if err != nil {
		return nil, err
	}
	if err := add("hypercube d=4", cube4); err != nil {
		return nil, err
	}
	chord72, err := topology.Chord(7, 2)
	if err != nil {
		return nil, err
	}
	if err := add("chord(7,2)", chord72); err != nil {
		return nil, err
	}
	core72, err := topology.CoreNetwork(7, 2)
	if err != nil {
		return nil, err
	}
	if err := add("core(7,2)", core72); err != nil {
		return nil, err
	}
	k7, err := topology.Complete(7)
	if err != nil {
		return nil, err
	}
	if err := add("K7", k7); err != nil {
		return nil, err
	}
	bip, err := topology.CompleteBipartite(5, 5)
	if err != nil {
		return nil, err
	}
	if err := add("K_{5,5}", bip); err != nil {
		return nil, err
	}
	// Checker-scaling rows: before degree-bound pruning, the MaxF scans on
	// these two 16-node graphs were the slowest condition checks in the
	// suite; the pruned/candidates ratio records why they no longer are.
	chord162, err := topology.Chord(16, 2)
	if err != nil {
		return nil, err
	}
	if err := add("chord(16,2)", chord162); err != nil {
		return nil, err
	}
	core162, err := topology.CoreNetwork(16, 2)
	if err != nil {
		return nil, err
	}
	if err := add("core(16,2)", core162); err != nil {
		return nil, err
	}
	return res, nil
}

// Passed asserts the paper's headline — some graph shows a strictly positive
// gap (connectivity over-promises), while core networks and complete graphs
// show none — plus the pruning account's sanity: pruned ≤ candidates on
// every row, with pruning actually firing somewhere.
func (r *E13Result) Passed() bool {
	gapSeen, prunedSeen := false, false
	for _, row := range r.Rows {
		if row.Gap < 0 {
			return false // the condition can never beat connectivity
		}
		if row.Gap > 0 {
			gapSeen = true
		}
		if row.Pruned < 0 || row.Pruned > row.Candidates || row.MemoHits < 0 {
			return false
		}
		if row.Pruned > 0 {
			prunedSeen = true
		}
		if (row.Graph == "core(7,2)" || row.Graph == "K7" || row.Graph == "core(16,2)") && row.Gap != 0 {
			return false
		}
	}
	return gapSeen && prunedSeen && len(r.Rows) > 0
}
