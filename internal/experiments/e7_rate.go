package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/analysis"
	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E7Result reproduces the convergence-rate analysis (Lemma 5, Theorem 3):
// on core networks under the hug adversary — the in-range strategy that
// maximally slows mixing — the measured worst contraction of U−µ over any
// l = n−f−1 consecutive rounds must respect the Lemma 5 bound (1 − αˡ/2),
// and the run must converge within the Theorem 3 worst-case round bound.
type E7Result struct {
	Rows []E7Row
}

// E7Row is one (n, f) rate measurement.
type E7Row struct {
	N, F int
	// Alpha is min_i a_i (equation (3)); L is the worst-case propagation
	// length n−f−1.
	Alpha float64
	L     int
	// Bound is the Lemma 5 per-phase factor (1 − αˡ/2).
	Bound float64
	// MeasuredWorst is the worst observed l-round contraction under attack.
	MeasuredWorst float64
	// PerRoundRate is the fitted geometric per-round rate.
	PerRoundRate float64
	// WithinBound is MeasuredWorst ≤ Bound.
	WithinBound bool
	// RoundsActual vs RoundsBound: measured rounds to ε vs the Theorem 3
	// worst case.
	RoundsActual, RoundsBound int
}

// Title implements Report.
func (*E7Result) Title() string {
	return "E7 — Lemma 5/Theorem 3: measured contraction vs. the (1 − αˡ/2) bound"
}

// Table implements Report.
func (r *E7Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.F),
			fmt.Sprintf("%.4f", row.Alpha), fmt.Sprint(row.L),
			fmt.Sprintf("%.6f", row.Bound),
			fmt.Sprintf("%.6f", row.MeasuredWorst),
			yes(row.WithinBound),
			fmt.Sprintf("%.4f", row.PerRoundRate),
			fmt.Sprint(row.RoundsActual), fmt.Sprint(row.RoundsBound),
		})
	}
	return table(
		[]string{"n", "f", "α", "l", "bound (l rounds)", "measured worst", "within", "per-round rate", "rounds to ε", "worst-case bound"},
		rows,
	)
}

// E7ConvergenceRate sweeps core networks for f = 1..3.
func E7ConvergenceRate() (*E7Result, error) {
	const eps = 1e-6
	res := &E7Result{}
	for _, tc := range []struct{ n, f int }{{4, 1}, {6, 1}, {7, 2}, {9, 2}, {10, 3}} {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			return nil, err
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: tc.f,
			Faulty:    faultySetOfSize(tc.n, tc.f),
			Initial:   ramp(tc.n),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Hug{High: true},
			MaxRounds: 200000, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		alpha, err := analysis.Alpha(g, tc.f)
		if err != nil {
			return nil, err
		}
		l := analysis.WorstCaseSteps(tc.n, tc.f)
		bound := analysis.ContractionBound(alpha, l)
		measured := analysis.MeasureContraction(tr, l, 1e-9)
		roundsBound, err := analysis.RoundsToEpsilonBound(tc.n, tc.f, alpha, tr.Range(0), eps)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E7Row{
			N: tc.n, F: tc.f,
			Alpha: alpha, L: l,
			Bound:         bound,
			MeasuredWorst: measured,
			PerRoundRate:  analysis.EmpiricalRate(tr),
			WithinBound:   measured <= bound+1e-9,
			RoundsActual:  tr.Rounds,
			RoundsBound:   roundsBound,
		})
	}
	return res, nil
}

// Passed reports whether every measurement respected both bounds.
func (r *E7Result) Passed() bool {
	for _, row := range r.Rows {
		if !row.WithinBound || row.RoundsActual > row.RoundsBound {
			return false
		}
	}
	return len(r.Rows) > 0
}
