package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/delayed"
	"iabc/internal/workload"

	"iabc/internal/topology"
)

// E15Result realizes the extension the paper defers to future work
// (Section 7, last paragraph): Algorithm 1 under the partially asynchronous
// model of Bertsekas–Tsitsiklis, where values may be up to B iterations
// stale. On a fixed core network under attack, the sweep measures
// rounds-to-ε as B grows with the adversarial (maximally stale) schedule —
// the expected shape is a roughly linear slowdown in B, with validity's
// envelope form intact throughout.
type E15Result struct {
	Rows []E15Row
}

// E15Row is one staleness-bound measurement.
type E15Row struct {
	B int
	// Converged/Rounds under the max-stale schedule.
	Converged bool
	Rounds    int
	// EnvelopeOK is whether the B-window validity envelope held.
	EnvelopeOK bool
	// SlowdownVsSync is Rounds divided by the B = 1 rounds.
	SlowdownVsSync float64
}

// Title implements Report.
func (*E15Result) Title() string {
	return "E15 — §7 deferred extension: partial asynchrony (staleness ≤ B iterations)"
}

// Table implements Report.
func (r *E15Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.B), yes(row.Converged), fmt.Sprint(row.Rounds),
			fmt.Sprintf("%.2f×", row.SlowdownVsSync), yes(row.EnvelopeOK),
		})
	}
	return table([]string{"B", "converged", "rounds to ε", "slowdown vs B=1", "envelope validity"}, rows)
}

// E15Delayed sweeps B = 1, 2, 4, 8 on CoreNetwork(7,2) with two core
// Byzantine nodes and the extremes adversary.
func E15Delayed() (*E15Result, error) {
	const (
		n, f = 7, 2
		eps  = 1e-6
	)
	g, err := topology.CoreNetwork(n, f)
	if err != nil {
		return nil, err
	}
	res := &E15Result{}
	base := 0
	for _, b := range []int{1, 2, 4, 8} {
		tr, err := delayed.Run(delayed.Config{
			G: g, F: f,
			Faulty:    faultySetOfSize(n, f),
			Initial:   workload.Bimodal(n, 0, 1),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 100},
			B:         b, Stale: delayed.MaxStale{B: b},
			MaxRounds: 200000, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		_, bad := tr.EnvelopeViolation(1e-9)
		row := E15Row{
			B: b, Converged: tr.Converged, Rounds: tr.Rounds, EnvelopeOK: !bad,
		}
		if b == 1 {
			base = tr.Rounds
		}
		if base > 0 {
			row.SlowdownVsSync = float64(tr.Rounds) / float64(base)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Passed requires convergence and envelope validity at every B, with
// rounds non-decreasing in B.
func (r *E15Result) Passed() bool {
	prev := 0
	for _, row := range r.Rows {
		if !row.Converged || !row.EnvelopeOK {
			return false
		}
		if row.Rounds < prev {
			return false
		}
		prev = row.Rounds
	}
	return len(r.Rows) > 0
}
