package experiments

import (
	"strings"
	"testing"
)

func TestE1Theorem1Attack(t *testing.T) {
	r, err := E1Theorem1Attack()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Frozen {
		t.Error("partition attack should freeze L and R exactly")
	}
	if r.FinalRange != 1.0 {
		t.Errorf("final range = %v, want 1 (frozen at m=0, M=1)", r.FinalRange)
	}
	if r.Rounds != 500 {
		t.Errorf("rounds = %d, want 500 (no convergence stop)", r.Rounds)
	}
	if r.Witness == nil {
		t.Fatal("no witness returned")
	}
	checkReport(t, r)
}

func TestE2Corollary2(t *testing.T) {
	r, err := E2Corollary2()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("corollary 2 sweep failed: %+v", r)
	}
	if r.GraphsExhausted != 4+64 {
		t.Errorf("exhausted %d graphs, want 68", r.GraphsExhausted)
	}
	if len(r.Boundary) != 8 {
		t.Errorf("boundary rows = %d, want 8", len(r.Boundary))
	}
	checkReport(t, r)
}

func TestE3Corollary3(t *testing.T) {
	r, err := E3Corollary3()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("corollary 3 sweep failed: %+v", r)
	}
	if len(r.Rows) != 6 {
		t.Errorf("rows = %d, want 6", len(r.Rows))
	}
	checkReport(t, r)
}

func TestE4Hypercube(t *testing.T) {
	r, err := E4Hypercube()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("hypercube sweep failed: %+v", r)
	}
	// d = 2..4 exact-checked; d ≥ 5 relies on the (polynomial) witness
	// verification, which is the paper's own Section 6.2 argument.
	for _, row := range r.Rows {
		wantExact := row.N <= 16
		if row.ExactChecked != wantExact {
			t.Errorf("d=%d: exactChecked=%v, want %v", row.D, row.ExactChecked, wantExact)
		}
	}
	if r.AttackRange != 1.0 {
		t.Errorf("3-cube stall range = %v, want exactly 1", r.AttackRange)
	}
	checkReport(t, r)
}

func TestE5CoreNetwork(t *testing.T) {
	r, err := E5CoreNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("core network sweep failed: %+v", r)
	}
	for _, row := range r.Rows {
		if row.BoundRounds <= 0 {
			t.Errorf("n=%d f=%d: missing worst-case bound", row.N, row.F)
		}
		if row.Rounds <= 0 {
			t.Errorf("n=%d f=%d: zero rounds", row.N, row.F)
		}
	}
	checkReport(t, r)
}

func TestE6Chord(t *testing.T) {
	r, err := E6Chord()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("chord sweep failed: %+v", r)
	}
	if !r.PaperWitnessOK {
		t.Error("paper's chord(7,2) witness should verify")
	}
	checkReport(t, r)
}

func TestE7ConvergenceRate(t *testing.T) {
	r, err := E7ConvergenceRate()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("rate sweep failed: %+v", r)
	}
	for _, row := range r.Rows {
		if row.PerRoundRate <= 0 || row.PerRoundRate >= 1 {
			t.Errorf("n=%d f=%d: implausible per-round rate %v", row.N, row.F, row.PerRoundRate)
		}
	}
	checkReport(t, r)
}

func TestE8Async(t *testing.T) {
	r, err := E8Async()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("async sweep failed: %+v", r)
	}
	checkReport(t, r)
}

func TestE9RuleAblation(t *testing.T) {
	r, err := E9RuleAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("ablation failed: %+v", r)
	}
	// Mean's final max should be dragged far beyond the honest hull [0, 6].
	for _, row := range r.Rows {
		if row.Rule == "mean" && row.FinalMax < 100 {
			t.Errorf("mean final max %v, expected the liar to drag it toward 1000", row.FinalMax)
		}
	}
	checkReport(t, r)
}

func TestE10Scaling(t *testing.T) {
	r, err := E10Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("scaling failed: %+v", r)
	}
	// Checker work must grow with n within the f=2 family.
	var prev int64
	for _, c := range r.Checker {
		if c.F != 2 || c.N == 7 {
			continue
		}
		if c.Candidates <= prev {
			t.Errorf("candidates did not grow: %d after %d", c.Candidates, prev)
		}
		prev = c.Candidates
	}
	checkReport(t, r)
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll re-executes every experiment")
	}
	var sb strings.Builder
	if err := RunAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1 —", "E2 —", "E3 —", "E4 —", "E5 —", "E6 —", "E7 —", "E8 —", "E9 —", "E10 —", "E11 —", "E12 —", "E13 —", "E14 —", "E15 —"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

// checkReport exercises the Report interface on every result.
func checkReport(t *testing.T, r Report) {
	t.Helper()
	if r.Title() == "" {
		t.Error("empty title")
	}
	tab := r.Table()
	if len(strings.Split(strings.TrimSpace(tab), "\n")) < 2 {
		t.Errorf("table too small:\n%s", tab)
	}
}
