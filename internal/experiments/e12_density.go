package experiments

import (
	"context"
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/analysis"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

// E12Result is the density ablation: on circulant graphs of fixed order
// n = 16 with growing offset sets (k = 3 is the minimal chord for f = 1;
// k = 15 is the complete graph), measure how connectivity buys convergence
// speed. The shape the theory predicts: α grows as... no — α *shrinks* as
// in-degree grows (a_i = 1/(d+1−2f)), yet convergence gets *faster* because
// information needs fewer hops; the Lemma 5 worst-case bound moves the
// opposite way from the measured rate, showing how loose the worst case is
// on dense graphs. Rounds-to-ε under attack is the decisive column.
type E12Result struct {
	Rows []E12Row
}

// E12Row is one density point.
type E12Row struct {
	Offsets int
	// Density is |E|/(n(n−1)).
	Density float64
	// Satisfied is the exact condition verdict at f = 1.
	Satisfied bool
	// Alpha is equation (3); RoundsToEps the measured rounds under the
	// insider adversary; Rate the fitted per-round contraction.
	Alpha       float64
	RoundsToEps int
	Rate        float64
}

// Title implements Report.
func (*E12Result) Title() string {
	return "E12 — density ablation: circulants n=16, f=1 — connectivity vs convergence speed"
}

// Table implements Report.
func (r *E12Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Offsets),
			fmt.Sprintf("%.3f", row.Density),
			yes(row.Satisfied),
			fmt.Sprintf("%.4f", row.Alpha),
			fmt.Sprint(row.RoundsToEps),
			fmt.Sprintf("%.4f", row.Rate),
		})
	}
	return table([]string{"offsets k", "density", "satisfied", "α", "rounds to ε", "per-round rate"}, rows)
}

// E12Density sweeps circulant offset counts k = 3, 4, 6, 8, 12, 15 at
// n = 16, f = 1 (k = 3 is Chord(16, 1); k = 15 is K16).
func E12Density() (*E12Result, error) {
	const (
		n, f = 16, 1
		eps  = 1e-6
	)
	res := &E12Result{}
	for _, k := range []int{3, 4, 6, 8, 12, 15} {
		offs := make([]int, k)
		for i := range offs {
			offs[i] = i + 1
		}
		g, err := topology.Circulant(n, offs)
		if err != nil {
			return nil, err
		}
		chk, err := condition.CheckParallel(context.Background(), g, f, 0)
		if err != nil {
			return nil, err
		}
		row := E12Row{
			Offsets:   k,
			Density:   g.Density(),
			Satisfied: chk.Satisfied,
		}
		if chk.Satisfied {
			alpha, err := analysis.Alpha(g, f)
			if err != nil {
				return nil, err
			}
			tr, err := sim.Sequential{}.Run(sim.Config{
				G: g, F: f,
				Faulty:    faultySetOfSize(n, f),
				Initial:   workload.Bimodal(n, 0, 1),
				Rule:      core.TrimmedMean{},
				Adversary: adversary.Insider{High: true},
				MaxRounds: 100000, Epsilon: eps,
			})
			if err != nil {
				return nil, err
			}
			row.Alpha = alpha
			row.RoundsToEps = tr.Rounds
			row.Rate = analysis.EmpiricalRate(tr)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Passed checks the expected shape: all circulants at k ≥ 3 satisfy, and
// the densest graph converges in no more rounds than the sparsest.
func (r *E12Result) Passed() bool {
	if len(r.Rows) < 2 {
		return false
	}
	for _, row := range r.Rows {
		if !row.Satisfied {
			return false
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	return last.RoundsToEps <= first.RoundsToEps
}
