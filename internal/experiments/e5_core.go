package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E5Result reproduces Section 6.1: core networks (Definition 4) satisfy
// Theorem 1 for every n > 3f, and Algorithm 1 therefore converges on them
// under Byzantine attack — with the f faulty nodes placed inside the core,
// the most connected (hardest) position.
type E5Result struct {
	Rows []E5Row
	// Epsilon is the convergence target used for the runs.
	Epsilon float64
}

// E5Row is one (n, f) core-network measurement.
type E5Row struct {
	N, F int
	// Satisfied is the exact Theorem 1 verdict (want: true).
	Satisfied bool
	// Converged and Rounds describe the simulation under the extremes
	// adversary with f core members Byzantine.
	Converged bool
	Rounds    int
	// BoundRounds is the worst-case Theorem 3 bound for comparison (the
	// paper's bound is loose by design; the measured rounds should be far
	// below it).
	BoundRounds int
	// Edges counts directed edges — the conjectured-minimal economy of the
	// topology.
	Edges int
}

// Title implements Report.
func (*E5Result) Title() string {
	return "E5 — §6.1: core networks satisfy Theorem 1 and converge under attack"
}

// Table implements Report.
func (r *E5Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.F), fmt.Sprint(row.Edges),
			yes(row.Satisfied), yes(row.Converged),
			fmt.Sprint(row.Rounds), fmt.Sprint(row.BoundRounds),
		})
	}
	return table(
		[]string{"n", "f", "edges", "satisfied", fmt.Sprintf("converged(ε=%g)", r.Epsilon), "rounds", "worst-case bound"},
		rows,
	)
}

// E5CoreNetwork sweeps f = 1..3 with n from 3f+1 upward.
func E5CoreNetwork() (*E5Result, error) {
	const eps = 1e-6
	res := &E5Result{Epsilon: eps}
	cases := []struct{ n, f int }{
		{4, 1}, {5, 1}, {6, 1}, {8, 1},
		{7, 2}, {8, 2}, {10, 2},
		{10, 3}, {12, 3},
	}
	for _, tc := range cases {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			return nil, err
		}
		chk, err := condition.Check(g, tc.f)
		if err != nil {
			return nil, err
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: tc.f,
			Faulty:    faultySetOfSize(tc.n, tc.f),
			Initial:   ramp(tc.n),
			Rule:      core.TrimmedMean{},
			Adversary: adversary.Extremes{Amplitude: 100},
			MaxRounds: 100000, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		row := E5Row{
			N: tc.n, F: tc.f,
			Satisfied: chk.Satisfied,
			Converged: tr.Converged,
			Rounds:    tr.Rounds,
			Edges:     g.NumEdges(),
		}
		if alpha, err := alphaOf(g, tc.f); err == nil {
			if bound, err := roundsBound(tc.n, tc.f, alpha, tr.Range(0), eps); err == nil {
				row.BoundRounds = bound
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Passed reports whether every core network satisfied and converged.
func (r *E5Result) Passed() bool {
	for _, row := range r.Rows {
		if !row.Satisfied || !row.Converged {
			return false
		}
		if row.BoundRounds > 0 && row.Rounds > row.BoundRounds {
			return false
		}
	}
	return len(r.Rows) > 0
}
