package experiments

import (
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/topology"
)

// E2Result reproduces Corollary 2 (n > 3f is necessary): an exhaustive
// sweep over every digraph on 2 and 3 nodes at f = 1, and complete-graph
// boundary checks K_{3f} (must fail) vs. K_{3f+1} (must pass) for f = 1..4.
type E2Result struct {
	// GraphsExhausted counts the small digraphs enumerated (all 2- and
	// 3-node digraphs: 4 + 64).
	GraphsExhausted int
	// AllSmallFail is true iff none of them satisfied the condition at f=1.
	AllSmallFail bool
	// Boundary holds the complete-graph boundary rows.
	Boundary []E2BoundaryRow
}

// E2BoundaryRow is one complete-graph boundary check.
type E2BoundaryRow struct {
	N, F      int
	Satisfied bool
	Want      bool
}

// Title implements Report.
func (*E2Result) Title() string {
	return "E2 — Corollary 2: n > 3f is necessary (exhaustive n ≤ 3 at f=1, K_n boundary)"
}

// Table implements Report.
func (r *E2Result) Table() string {
	rows := [][]string{{
		fmt.Sprintf("all %d digraphs on n ≤ 3", r.GraphsExhausted),
		"1", yes(!r.AllSmallFail), "no",
	}}
	for _, b := range r.Boundary {
		rows = append(rows, []string{
			fmt.Sprintf("K%d", b.N), fmt.Sprint(b.F), yes(b.Satisfied), yes(b.Want),
		})
	}
	return table([]string{"graph", "f", "satisfied", "expected"}, rows)
}

// E2Corollary2 runs the sweep.
func E2Corollary2() (*E2Result, error) {
	res := &E2Result{AllSmallFail: true}

	// All digraphs on 2 nodes (2 possible edges) and 3 nodes (6 edges).
	for _, n := range []int{2, 3} {
		var pairs [][2]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		for mask := 0; mask < 1<<len(pairs); mask++ {
			b := graph.NewBuilder(n)
			for bit, e := range pairs {
				if mask&(1<<bit) != 0 {
					b.AddEdge(e[0], e[1])
				}
			}
			g, err := b.Build()
			if err != nil {
				return nil, err
			}
			chk, err := condition.Check(g, 1)
			if err != nil {
				return nil, err
			}
			res.GraphsExhausted++
			if chk.Satisfied {
				res.AllSmallFail = false
			}
		}
	}

	// Boundary: K_{3f} fails, K_{3f+1} passes, for f = 1..4.
	for f := 1; f <= 4; f++ {
		for _, tc := range []struct {
			n    int
			want bool
		}{
			{3 * f, false},
			{3*f + 1, true},
		} {
			g, err := topology.Complete(tc.n)
			if err != nil {
				return nil, err
			}
			chk, err := condition.Check(g, f)
			if err != nil {
				return nil, err
			}
			res.Boundary = append(res.Boundary, E2BoundaryRow{
				N: tc.n, F: f, Satisfied: chk.Satisfied, Want: tc.want,
			})
		}
	}
	return res, nil
}

// Passed reports whether every measurement matched the corollary.
func (r *E2Result) Passed() bool {
	if !r.AllSmallFail {
		return false
	}
	for _, b := range r.Boundary {
		if b.Satisfied != b.Want {
			return false
		}
	}
	return true
}
