package experiments

import (
	"fmt"
	"math/rand"

	"iabc/internal/condition"
	"iabc/internal/topology"
)

// E14Result cross-validates the two independent characterizations of the
// tight condition on random graphs — the insulated-set checker (Definition
// 1 route, running its pruned-and-memoized candidate enumeration) against
// the reduced-graph route (every fault set, every choice of ≤ f in-edge
// deletions per node, must leave a unique source component). The two
// implementations share only the graph type; exact agreement on hundreds of
// graphs is the strongest internal-consistency evidence the library offers —
// and, since the pruned checker is the one under test, a standing
// cross-validation that the degree bound and memo never change a verdict.
// It also reports the sampling screen's hit rate on a known-violating graph.
type E14Result struct {
	// GraphsCompared counts random graphs where both deciders ran.
	GraphsCompared int
	// Agreements counts verdict matches (want: all).
	Agreements int
	// SatisfiedCount tallies how many sampled graphs satisfied the
	// condition (context for the comparison's coverage).
	SatisfiedCount int
	// CandidatesTotal/PrunedTotal/MemoHitsTotal accumulate the insulated-set
	// checker's work counters over all compared graphs — evidence the
	// agreement was reached over the pruned path, not around it.
	CandidatesTotal, PrunedTotal, MemoHitsTotal int64
	// BarbellUnique/BarbellTotal: reduced-graph sampling on the thin-bridge
	// barbell — the deficit certifies the violation cheaply.
	BarbellUnique, BarbellTotal int
}

// Title implements Report.
func (*E14Result) Title() string {
	return "E14 — two roads to Theorem 1: insulated sets vs reduced graphs (cross-validation)"
}

// Table implements Report.
func (r *E14Result) Table() string {
	out := table(
		[]string{"random graphs", "agreements", "satisfied among them", "cand sets", "pruned", "memo"},
		[][]string{{
			fmt.Sprint(r.GraphsCompared), fmt.Sprint(r.Agreements), fmt.Sprint(r.SatisfiedCount),
			fmt.Sprint(r.CandidatesTotal), fmt.Sprint(r.PrunedTotal), fmt.Sprint(r.MemoHitsTotal),
		}},
	)
	return out + fmt.Sprintf("sampling screen on barbell(3,0), f=1: %d/%d reduced graphs had a unique source (deficit certifies violation)\n",
		r.BarbellUnique, r.BarbellTotal)
}

// E14ReducedCrossCheck runs the comparison on 120 random digraphs with
// n ≤ 5, f ≤ 1 (the reduced-graph enumeration is doubly exponential).
func E14ReducedCrossCheck() (*E14Result, error) {
	rng := rand.New(rand.NewSource(14))
	res := &E14Result{}
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(4)
		f := rng.Intn(2)
		g, err := topology.RandomDigraph(n, 0.2+0.6*rng.Float64(), rng)
		if err != nil {
			return nil, err
		}
		byWitness, err := condition.Check(g, f)
		if err != nil {
			return nil, err
		}
		byReduced, err := condition.CheckViaReducedGraphs(g, f)
		if err != nil {
			return nil, err
		}
		res.GraphsCompared++
		if byWitness.Satisfied == byReduced {
			res.Agreements++
		}
		if byWitness.Satisfied {
			res.SatisfiedCount++
		}
		res.CandidatesTotal += byWitness.CandidatesExamined
		res.PrunedTotal += byWitness.CandidatesPruned
		res.MemoHitsTotal += byWitness.MemoHits
	}

	barbell, err := topology.Barbell(3, 0)
	if err != nil {
		return nil, err
	}
	unique, total, err := condition.SampleReducedGraphs(barbell, 1, 400, rand.New(rand.NewSource(15)))
	if err != nil {
		return nil, err
	}
	res.BarbellUnique, res.BarbellTotal = unique, total
	return res, nil
}

// Passed requires perfect agreement, a consistent pruning account, and a
// detected deficit on the barbell.
func (r *E14Result) Passed() bool {
	return r.GraphsCompared > 0 &&
		r.Agreements == r.GraphsCompared &&
		r.PrunedTotal >= 0 && r.PrunedTotal <= r.CandidatesTotal &&
		r.BarbellUnique < r.BarbellTotal
}
