package experiments

import "testing"

func TestE11ConjectureHoldsForF1AndF2(t *testing.T) {
	r, err := E11Conjecture()
	if err != nil {
		t.Fatal(err)
	}
	// f = 1: the unique minimal satisfying graph is K4 = CoreNetwork(4,1).
	if r.F1.GraphsChecked != 64 {
		t.Errorf("f=1 checked %d graphs, want 64", r.F1.GraphsChecked)
	}
	if r.F1.MinEdges != 6 || r.F1.CoreEdges != 6 {
		t.Errorf("f=1 min/core edges = %d/%d, want 6/6", r.F1.MinEdges, r.F1.CoreEdges)
	}
	if r.F1.SatisfiersAtMin != 1 {
		t.Errorf("f=1 satisfiers at min = %d, want exactly 1 (K4)", r.F1.SatisfiersAtMin)
	}
	if !r.F1.ConjectureHolds {
		t.Error("conjecture should hold for f=1")
	}

	// f = 2: all 210 sub-20-edge candidates (complement matchings) fail.
	if r.F2.Checked18 != 105 || r.F2.Checked19 != 105 {
		t.Errorf("f=2 candidates = %d+%d, want 105+105", r.F2.Checked18, r.F2.Checked19)
	}
	if r.F2.Satisfied18 != 0 || r.F2.Satisfied19 != 0 {
		t.Errorf("f=2: %d+%d candidates below 20 edges satisfy — conjecture refuted?!",
			r.F2.Satisfied18, r.F2.Satisfied19)
	}
	if r.F2.MinEdges != 20 || !r.F2.ConjectureHolds {
		t.Errorf("f=2 min edges = %d, conjecture holds = %v", r.F2.MinEdges, r.F2.ConjectureHolds)
	}
	checkReport(t, r)
}

func TestMatchingsEnumeration(t *testing.T) {
	if got := len(matchings(7, 3)); got != 105 {
		t.Errorf("matchings(7,3) = %d, want 105", got)
	}
	if got := len(matchings(7, 2)); got != 105 {
		t.Errorf("matchings(7,2) = %d, want 105", got)
	}
	if got := len(matchings(4, 2)); got != 3 {
		t.Errorf("matchings(4,2) = %d, want 3 (perfect matchings of K4)", got)
	}
	// Every matching must have disjoint endpoints.
	for _, m := range matchings(6, 3) {
		seen := map[int]bool{}
		for _, e := range m {
			if seen[e[0]] || seen[e[1]] {
				t.Fatalf("matching %v reuses a vertex", m)
			}
			seen[e[0]], seen[e[1]] = true, true
		}
	}
	if got := len(matchings(6, 3)); got != 15 {
		t.Errorf("matchings(6,3) = %d, want 15", got)
	}
}

func TestE12Density(t *testing.T) {
	r, err := E12Density()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("density sweep failed: %+v", r)
	}
	// Rounds-to-ε must be non-increasing in density (the headline shape).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].RoundsToEps > r.Rows[i-1].RoundsToEps {
			t.Errorf("rounds increased with density: k=%d needs %d > k=%d's %d",
				r.Rows[i].Offsets, r.Rows[i].RoundsToEps,
				r.Rows[i-1].Offsets, r.Rows[i-1].RoundsToEps)
		}
	}
	// α must be non-increasing in density (a_i = 1/(d+1−2f)).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Alpha > r.Rows[i-1].Alpha {
			t.Errorf("alpha increased with density")
		}
	}
	checkReport(t, r)
}
