package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E9Result is the design ablation behind Algorithm 1 (the validity theorem,
// Theorem 2): on the same core network with the same extreme liar, compare
//
//   - plain Mean (the f = 0 baseline of [4]) — the liar drags fault-free
//     nodes outside the initial hull: validity violated;
//   - Algorithm 1's TrimmedMean — validity holds and the run converges;
//   - TrimmedMidpoint — validity holds too (trimming is what matters), with
//     a different rate: the weight structure of equation (2) is not the
//     only convergent choice, but trimming 2f values is non-negotiable.
type E9Result struct {
	Rows []E9Row
}

// E9Row is one rule's outcome.
type E9Row struct {
	Rule string
	// ValidityViolated is whether U ever rose or µ ever fell.
	ValidityViolated bool
	// Converged within the round budget, and the final fault-free range.
	Converged  bool
	Rounds     int
	FinalRange float64
	// FinalMax shows how far the liar dragged the maximum (vivid for Mean).
	FinalMax float64
}

// Title implements Report.
func (*E9Result) Title() string {
	return "E9 — ablation of Theorem 2: trimming is what buys validity"
}

// Table implements Report.
func (r *E9Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Rule, yes(row.ValidityViolated), yes(row.Converged),
			fmt.Sprint(row.Rounds), fmt.Sprintf("%.3g", row.FinalRange), fmt.Sprintf("%.4g", row.FinalMax),
		})
	}
	return table([]string{"rule", "validity violated", "converged", "rounds", "final range", "final max"}, rows)
}

// E9RuleAblation runs the three rules on CoreNetwork(7,2) with two core
// members lying at +1000.
func E9RuleAblation() (*E9Result, error) {
	const (
		n, f = 7, 2
		lie  = 1000.0
		eps  = 1e-6
	)
	g, err := topology.CoreNetwork(n, f)
	if err != nil {
		return nil, err
	}
	res := &E9Result{}
	for _, rule := range []core.UpdateRule{core.Mean{}, core.TrimmedMean{}, core.TrimmedMidpoint{}} {
		cfgF := f
		if rule.Name() == "mean" {
			cfgF = 0 // Mean ignores f; keep validation happy on any graph.
		}
		tr, err := sim.Sequential{}.Run(sim.Config{
			G: g, F: cfgF,
			Faulty:    faultySetOfSize(n, f),
			Initial:   ramp(n),
			Rule:      rule,
			Adversary: adversary.Fixed{Value: lie},
			MaxRounds: 5000, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		_, violated := tr.ValidityViolation(1e-9)
		res.Rows = append(res.Rows, E9Row{
			Rule:             rule.Name(),
			ValidityViolated: violated,
			Converged:        tr.Converged,
			Rounds:           tr.Rounds,
			FinalRange:       tr.FinalRange(),
			FinalMax:         tr.U[tr.Rounds],
		})
	}
	return res, nil
}

// Passed encodes the ablation's expectations: mean violates validity; both
// trimmed rules keep it and converge.
func (r *E9Result) Passed() bool {
	if len(r.Rows) != 3 {
		return false
	}
	byName := map[string]E9Row{}
	for _, row := range r.Rows {
		byName[row.Rule] = row
	}
	mean, ok1 := byName["mean"]
	tm, ok2 := byName["trimmed-mean"]
	mid, ok3 := byName["trimmed-midpoint"]
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return mean.ValidityViolated &&
		!tm.ValidityViolated && tm.Converged &&
		!mid.ValidityViolated && mid.Converged
}
