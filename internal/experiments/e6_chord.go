package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E6Result reproduces Section 6.3 (chord networks, Definition 5) and
// extends the paper's three spot checks into a sweep: for each (n, f) the
// exact Theorem 1 verdict, and for the paper's violated case the
// re-verification of its published witness F={5,6}, L={0,2}, R={1,3,4}.
type E6Result struct {
	Rows []E6Row
	// PaperWitnessOK confirms the exact witness printed in Section 6.3.
	PaperWitnessOK bool
	// ViolatedConvergeAnyway records the simulation on Chord(7,2) with
	// conforming faulty nodes — the graph violates the condition, but the
	// specific all-honest run may still mix; the impossibility only says
	// SOME adversary (E1's) prevents consensus. Reported for context.
	ViolatedConvergeAnyway bool
}

// E6Row is one chord measurement.
type E6Row struct {
	N, F int
	// Satisfied is the exact checker verdict.
	Satisfied bool
	// PaperClaim is the paper's stated verdict where it gives one
	// ("satisfied"/"violated"/"" when the paper is silent).
	PaperClaim string
	// Converged is the Algorithm 1 run outcome on satisfying instances
	// (with f faulty under the extremes adversary); always false-with-dash
	// semantics for violating ones (not run).
	Converged bool
	Ran       bool
	Rounds    int
}

// Title implements Report.
func (*E6Result) Title() string {
	return "E6 — §6.3: chord networks — paper's three cases plus an (n, f) sweep"
}

// Table implements Report.
func (r *E6Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		claim := row.PaperClaim
		if claim == "" {
			claim = "-"
		}
		conv := "-"
		if row.Ran {
			conv = fmt.Sprintf("%v (%d rounds)", row.Converged, row.Rounds)
		}
		rows = append(rows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.F),
			yes(row.Satisfied), claim, conv,
		})
	}
	out := table([]string{"n", "f", "satisfied", "paper claim", "converged under attack"}, rows)
	return out + fmt.Sprintf("paper witness F={5,6} L={0,2} R={1,3,4} on chord(7,2) verifies: %v\n", r.PaperWitnessOK)
}

// E6Chord runs the paper's cases and a sweep.
func E6Chord() (*E6Result, error) {
	res := &E6Result{}
	claims := map[[2]int]string{
		{4, 1}: "satisfied (complete)",
		{5, 1}: "satisfied",
		{7, 2}: "violated",
	}
	cases := [][2]int{
		{4, 1}, {5, 1}, {6, 1}, {7, 1}, {10, 1}, {13, 1},
		{7, 2}, {8, 2}, {9, 2}, {10, 2}, {11, 2}, {13, 2},
		{10, 3}, {13, 3},
	}
	const eps = 1e-6
	for _, nf := range cases {
		n, f := nf[0], nf[1]
		g, err := topology.Chord(n, f)
		if err != nil {
			return nil, err
		}
		chk, err := condition.Check(g, f)
		if err != nil {
			return nil, err
		}
		row := E6Row{N: n, F: f, Satisfied: chk.Satisfied, PaperClaim: claims[nf]}
		if chk.Satisfied {
			tr, err := sim.Sequential{}.Run(sim.Config{
				G: g, F: f,
				Faulty:    faultySetOfSize(n, f),
				Initial:   ramp(n),
				Rule:      core.TrimmedMean{},
				Adversary: adversary.Extremes{Amplitude: 100},
				MaxRounds: 100000, Epsilon: eps,
			})
			if err != nil {
				return nil, err
			}
			row.Ran = true
			row.Converged = tr.Converged
			row.Rounds = tr.Rounds
		}
		res.Rows = append(res.Rows, row)
	}

	// The paper's witness for chord(7,2).
	g72, err := topology.Chord(7, 2)
	if err != nil {
		return nil, err
	}
	paper := &condition.Witness{
		F: nodeset.FromMembers(7, 5, 6),
		L: nodeset.FromMembers(7, 0, 2),
		C: nodeset.New(7),
		R: nodeset.FromMembers(7, 1, 3, 4),
	}
	res.PaperWitnessOK = paper.Verify(g72, 2, condition.SyncThreshold(2)) == nil

	// Context: the violating graph under *benign* faults may still mix —
	// impossibility is about worst-case adversaries, not every run.
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g72, F: 2,
		Faulty:    nodeset.FromMembers(7, 5, 6),
		Initial:   ramp(7),
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Conforming{},
		MaxRounds: 20000, Epsilon: eps,
	})
	if err != nil {
		return nil, err
	}
	res.ViolatedConvergeAnyway = tr.Converged
	return res, nil
}

// Passed checks the paper's three claims against the measured verdicts.
func (r *E6Result) Passed() bool {
	want := map[[2]int]bool{{4, 1}: true, {5, 1}: true, {7, 2}: false}
	seen := 0
	for _, row := range r.Rows {
		if w, ok := want[[2]int{row.N, row.F}]; ok {
			seen++
			if row.Satisfied != w {
				return false
			}
		}
		if row.Ran && !row.Converged {
			return false
		}
	}
	return seen == len(want) && r.PaperWitnessOK
}
