package experiments

import "testing"

func TestE13Connectivity(t *testing.T) {
	r, err := E13Connectivity()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("connectivity comparison failed: %+v", r)
	}
	byName := map[string]E13Row{}
	for _, row := range r.Rows {
		byName[row.Graph] = row
	}
	// The paper's two showcases:
	// hypercube d=4: κ = 4 → classical f = 1, iterative f = 0.
	if row := byName["hypercube d=4"]; row.Kappa != 4 || row.ClassicalF != 1 || row.IterativeF != 0 {
		t.Errorf("hypercube d=4 row = %+v", row)
	}
	// chord(7,2): κ = 5 → classical f = 2, but the condition gives less.
	if row := byName["chord(7,2)"]; row.Kappa != 5 || row.ClassicalF != 2 || row.IterativeF >= 2 {
		t.Errorf("chord(7,2) row = %+v", row)
	}
	// core(7,2) and K7: no gap.
	if row := byName["core(7,2)"]; row.Gap != 0 || row.IterativeF != 2 {
		t.Errorf("core(7,2) row = %+v", row)
	}
	if row := byName["K7"]; row.Kappa != 6 || row.IterativeF != 2 {
		t.Errorf("K7 row = %+v", row)
	}
	checkReport(t, r)
}

func TestE15Delayed(t *testing.T) {
	r, err := E15Delayed()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("staleness sweep failed: %+v", r)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	// B = 1 is the synchronous baseline: slowdown exactly 1.
	if r.Rows[0].B != 1 || r.Rows[0].SlowdownVsSync != 1 {
		t.Errorf("baseline row = %+v", r.Rows[0])
	}
	// Deep staleness must cost something.
	last := r.Rows[len(r.Rows)-1]
	if last.SlowdownVsSync < 1.5 {
		t.Errorf("B=%d slowdown %v suspiciously small", last.B, last.SlowdownVsSync)
	}
	checkReport(t, r)
}

func TestE14ReducedCrossCheck(t *testing.T) {
	r, err := E14ReducedCrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("cross-check failed: %+v", r)
	}
	if r.GraphsCompared != 120 {
		t.Errorf("compared %d graphs, want 120", r.GraphsCompared)
	}
	if r.SatisfiedCount == 0 || r.SatisfiedCount == r.GraphsCompared {
		t.Errorf("degenerate satisfied count %d of %d", r.SatisfiedCount, r.GraphsCompared)
	}
	checkReport(t, r)
}
