package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/topology"
)

// E8Result reproduces Section 7: asynchronous iterative consensus under the
// strengthened condition (threshold 2f+1, n > 5f, in-degree ≥ 3f+1).
// Measurements:
//
//   - boundary of the strengthened condition on complete graphs: K_{5f}
//     fails, K_{5f+1} passes (the async analogue of Corollary 2);
//   - convergence of the asynchronous algorithm on satisfying graphs under
//     Byzantine faults and adversarial message delays within the bound B;
//   - starvation detection when more than f in-neighbors stay silent.
type E8Result struct {
	Boundary []E8BoundaryRow
	Runs     []E8RunRow
	// StallDetected is whether the engine correctly reported the
	// over-silent configuration as stalled rather than looping.
	StallDetected bool
}

// E8BoundaryRow is one strengthened-condition boundary check.
type E8BoundaryRow struct {
	N, F      int
	Satisfied bool
	Want      bool
}

// E8RunRow is one asynchronous simulation outcome.
type E8RunRow struct {
	Graph     string
	F         int
	Adversary string
	Delays    string
	Converged bool
	// Time is the simulation time at the end; Deliveries the messages
	// delivered.
	Time       float64
	Deliveries int
}

// Title implements Report.
func (*E8Result) Title() string {
	return "E8 — §7: asynchronous consensus (threshold 2f+1, n > 5f, in-degree ≥ 3f+1)"
}

// Table implements Report.
func (r *E8Result) Table() string {
	rows := make([][]string, 0, len(r.Boundary))
	for _, b := range r.Boundary {
		rows = append(rows, []string{
			fmt.Sprintf("K%d", b.N), fmt.Sprint(b.F), yes(b.Satisfied), yes(b.Want),
		})
	}
	out := table([]string{"graph", "f", "async condition", "expected"}, rows)

	runRows := make([][]string, 0, len(r.Runs))
	for _, rr := range r.Runs {
		runRows = append(runRows, []string{
			rr.Graph, fmt.Sprint(rr.F), rr.Adversary, rr.Delays,
			yes(rr.Converged), fmt.Sprintf("%.1f", rr.Time), fmt.Sprint(rr.Deliveries),
		})
	}
	out += table([]string{"graph", "f", "adversary", "delays", "converged", "time", "deliveries"}, runRows)
	return out + fmt.Sprintf("starvation (2 silent, f=1) detected as stall: %v\n", r.StallDetected)
}

// E8Async runs the boundary checks and simulations.
func E8Async() (*E8Result, error) {
	res := &E8Result{}

	// Async analogue of Corollary 2 on complete graphs: n > 5f.
	for f := 1; f <= 2; f++ {
		for _, tc := range []struct {
			n    int
			want bool
		}{
			{5 * f, false},
			{5*f + 1, true},
		} {
			g, err := topology.Complete(tc.n)
			if err != nil {
				return nil, err
			}
			chk, err := condition.CheckAsync(g, f)
			if err != nil {
				return nil, err
			}
			res.Boundary = append(res.Boundary, E8BoundaryRow{
				N: tc.n, F: f, Satisfied: chk.Satisfied, Want: tc.want,
			})
		}
	}

	// Simulations on K7 (f=1) and K11 (f=2) under several adversaries and
	// delay regimes.
	const eps = 1e-6
	type runCase struct {
		n, f  int
		strat adversary.Strategy
		mkDel func() async.DelayPolicy
		name  string
	}
	cases := []runCase{
		{7, 1, adversary.Fixed{Value: 1e6},
			func() async.DelayPolicy { return &async.Uniform{B: 2, Rng: rand.New(rand.NewSource(81))} },
			"uniform(0,2]"},
		{7, 1, adversary.Extremes{Amplitude: 50},
			func() async.DelayPolicy {
				return async.Targeted{Slow: nodeset.FromMembers(7, 1, 2, 3), B: 15, Fast: 0.1}
			},
			"targeted(B=15)"},
		{7, 1, adversary.Silent{},
			func() async.DelayPolicy { return async.Fixed{D: 1} },
			"fixed(1)"},
		{11, 2, adversary.Extremes{Amplitude: 100},
			func() async.DelayPolicy { return &async.Uniform{B: 3, Rng: rand.New(rand.NewSource(82))} },
			"uniform(0,3]"},
	}
	for _, c := range cases {
		g, err := topology.Complete(c.n)
		if err != nil {
			return nil, err
		}
		faulty := nodeset.New(c.n)
		for i := 0; i < c.f; i++ {
			faulty.Add(c.n - 1 - i)
		}
		tr, err := async.Run(context.Background(), async.Config{
			G: g, F: c.f, Faulty: faulty,
			Initial: ramp(c.n), Rule: core.TrimmedMean{},
			Adversary: c.strat, Delays: c.mkDel(),
			MaxRounds: 3000, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, E8RunRow{
			Graph: fmt.Sprintf("K%d", c.n), F: c.f,
			Adversary: c.strat.Name(), Delays: c.name,
			Converged: tr.Converged, Time: tr.Time, Deliveries: tr.Deliveries,
		})
	}

	// Starvation: two silent faulty with budget f=1 must stall, not hang.
	g7, err := topology.Complete(7)
	if err != nil {
		return nil, err
	}
	stall, err := async.Run(context.Background(), async.Config{
		G: g7, F: 1, Faulty: nodeset.FromMembers(7, 5, 6),
		Initial: ramp(7), Rule: core.TrimmedMean{},
		Adversary: adversary.Silent{}, Delays: async.Fixed{D: 1},
		MaxRounds: 50, Epsilon: eps,
	})
	if err != nil {
		return nil, err
	}
	res.StallDetected = stall.Stalled && !stall.Converged
	return res, nil
}

// Passed reports whether the boundary, runs, and stall detection all match
// Section 7's claims.
func (r *E8Result) Passed() bool {
	for _, b := range r.Boundary {
		if b.Satisfied != b.Want {
			return false
		}
	}
	for _, rr := range r.Runs {
		if !rr.Converged {
			return false
		}
	}
	return r.StallDetected && len(r.Boundary) > 0 && len(r.Runs) > 0
}
