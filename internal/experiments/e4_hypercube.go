package experiments

import (
	"fmt"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E4Result reproduces Section 6.2 and Fig. 3: binary hypercubes have
// connectivity d but never satisfy Theorem 1 for f ≥ 1 — the cut along any
// one dimension is a violating partition. For small d the exact checker
// confirms; for all d the dimension-cut witness is verified directly
// (polynomial time), exactly the paper's argument. A simulation on the
// 3-cube shows the partition attack holding both halves apart.
type E4Result struct {
	Rows []E4Row
	// AttackFrozen is whether the Fig. 3 partition attack froze the 3-cube
	// halves at their initial values.
	AttackFrozen bool
	// AttackRange is the fault-free range after the attack run.
	AttackRange float64
}

// E4Row is one hypercube measurement.
type E4Row struct {
	D, N int
	// ExactChecked is whether the exponential checker ran (n − f ≤ 62).
	ExactChecked bool
	// SatisfiedF1 is the exact verdict at f = 1 (want: false).
	SatisfiedF1 bool
	// CutWitnessOK is whether the dimension-cut partition
	// {0..2^{d-1}−1 | rest} verifies as a Theorem 1 violation at f = 1.
	CutWitnessOK bool
	// SatisfiedF0 is the verdict at f = 0 (want: true — hypercubes are
	// connected).
	SatisfiedF0 bool
}

// Title implements Report.
func (*E4Result) Title() string {
	return "E4 — §6.2/Fig. 3: hypercubes fail Theorem 1 for f = 1 (dimension cut witness)"
}

// Table implements Report.
func (r *E4Result) Table() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		exact := "skipped (n too large)"
		if row.ExactChecked {
			exact = yes(row.SatisfiedF1)
		}
		rows = append(rows, []string{
			fmt.Sprint(row.D), fmt.Sprint(row.N), exact,
			yes(row.CutWitnessOK), yes(row.SatisfiedF0),
		})
	}
	out := table([]string{"d", "n", "satisfied f=1 (exact)", "dim-cut witness verifies", "satisfied f=0"}, rows)
	return out + fmt.Sprintf("3-cube partition attack: frozen=%v, final range=%g\n", r.AttackFrozen, r.AttackRange)
}

// E4Hypercube runs the sweep for d = 2..7.
func E4Hypercube() (*E4Result, error) {
	res := &E4Result{}
	for d := 2; d <= 7; d++ {
		g, err := topology.Hypercube(d)
		if err != nil {
			return nil, err
		}
		n := g.N()
		row := E4Row{D: d, N: n}

		// Fig. 3 witness: halves along the top dimension, F = ∅.
		low := nodeset.New(n)
		for i := 0; i < n/2; i++ {
			low.Add(i)
		}
		w := &condition.Witness{
			F: nodeset.New(n), L: low, C: nodeset.New(n), R: low.Complement(),
		}
		row.CutWitnessOK = w.Verify(g, 1, condition.SyncThreshold(1)) == nil

		// The exact check is exponential and, on hypercubes, hits its worst
		// case: the minimal violating sets are half-cubes, so refuting all
		// smaller candidates costs ~2^n. d ≤ 4 is instant; for d ≥ 5 the
		// paper's own argument — verify the dimension cut — is polynomial
		// and is what the CutWitnessOK column reports.
		if n <= 16 {
			row.ExactChecked = true
			chk, err := condition.Check(g, 1)
			if err != nil {
				return nil, err
			}
			row.SatisfiedF1 = chk.Satisfied
			chk0, err := condition.Check(g, 0)
			if err != nil {
				return nil, err
			}
			row.SatisfiedF0 = chk0.Satisfied
		} else {
			// f=0 is still decidable in polynomial time: unique source SCC
			// ⟺ the condition; hypercubes are strongly connected.
			row.SatisfiedF0 = g.IsStronglyConnected()
		}
		res.Rows = append(res.Rows, row)
	}

	// Fig. 3 dynamics: attack the 3-cube along the top-dimension cut with
	// one Byzantine node per half lying at the seam. With f = 1 the
	// in-degree bound (3 ≥ 2f+1) holds, so Algorithm 1 runs — but the cut
	// has only one inter-half edge per node, below f+1, so the halves
	// cannot hear each other through the trimming.
	g3, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	initial := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g3, F: 1, Faulty: nodeset.New(8), Initial: initial,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Conforming{},
		MaxRounds: 300,
	})
	if err != nil {
		return nil, err
	}
	// Even with zero actual faults, trimming f=1 removes the single
	// cross-dimension value at every node: the halves never mix.
	res.AttackFrozen = tr.FinalRange() == 1.0
	res.AttackRange = tr.FinalRange()
	return res, nil
}

// Passed reports whether every hypercube behaved as Section 6.2 claims.
func (r *E4Result) Passed() bool {
	for _, row := range r.Rows {
		if row.ExactChecked && row.SatisfiedF1 {
			return false
		}
		if !row.CutWitnessOK || !row.SatisfiedF0 {
			return false
		}
	}
	return r.AttackFrozen && len(r.Rows) > 0
}
