package experiments

import (
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/topology"
)

// E3Result reproduces Corollary 3 (every in-degree ≥ 2f+1 is necessary):
// starting from K_{3f+1} (which satisfies the condition), strip incoming
// edges from node 0 down to exactly 2f — the condition must flip to
// violated, and the checker's witness must survive independent
// verification.
type E3Result struct {
	Rows []E3Row
}

// E3Row is one in-degree boundary measurement.
type E3Row struct {
	F, N int
	// InDegree is node 0's in-degree after pruning.
	InDegree int
	// Satisfied is the exact checker's verdict (want: false at 2f, true at
	// 2f+1 for these complete-graph variants).
	Satisfied bool
	Want      bool
	// WitnessOK is whether the emitted witness verified (only when
	// violated).
	WitnessOK bool
}

// Title implements Report.
func (*E3Result) Title() string {
	return "E3 — Corollary 3: in-degree ≥ 2f+1 is necessary (K_{3f+1} with node 0 pruned)"
}

// Table implements Report.
func (r *E3Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.F), fmt.Sprint(row.N), fmt.Sprint(row.InDegree),
			yes(row.Satisfied), yes(row.Want), yes(row.WitnessOK),
		})
	}
	return table([]string{"f", "n", "indeg(0)", "satisfied", "expected", "witness verifies"}, rows)
}

// E3Corollary3 runs the boundary sweep for f = 1..3.
func E3Corollary3() (*E3Result, error) {
	res := &E3Result{}
	for f := 1; f <= 3; f++ {
		n := 3*f + 1
		for _, tc := range []struct {
			indeg int
			want  bool
		}{
			{2 * f, false},
			{2*f + 1, true},
		} {
			g, err := topology.Complete(n)
			if err != nil {
				return nil, err
			}
			var drop [][2]int
			for from := 1; from <= (n-1)-tc.indeg; from++ {
				drop = append(drop, [2]int{from, 0})
			}
			pruned, err := topology.RemoveEdges(g, drop)
			if err != nil {
				return nil, err
			}
			if got := pruned.InDegree(0); got != tc.indeg {
				return nil, fmt.Errorf("experiments: pruned in-degree %d, want %d", got, tc.indeg)
			}
			chk, err := condition.Check(pruned, f)
			if err != nil {
				return nil, err
			}
			row := E3Row{
				F: f, N: n, InDegree: tc.indeg,
				Satisfied: chk.Satisfied, Want: tc.want,
			}
			if chk.Witness != nil {
				row.WitnessOK = chk.Witness.Verify(pruned, f, condition.SyncThreshold(f)) == nil
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Passed reports whether every boundary matched the corollary.
func (r *E3Result) Passed() bool {
	for _, row := range r.Rows {
		if row.Satisfied != row.Want {
			return false
		}
		if !row.Satisfied && !row.WitnessOK {
			return false
		}
	}
	return len(r.Rows) > 0
}
