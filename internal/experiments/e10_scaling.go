package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"iabc/internal/adversary"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

// E10Result characterizes the cost of the machinery itself (the paper's
// condition is coNP-hard to check in general; this quantifies what "exact
// but exponential" means in practice, and how fast the two engines step):
//
//   - exact checker work (fault sets and candidate sets examined, wall
//     time) across a family of growing core networks;
//   - rounds/second for the sequential and concurrent engines.
//
// Exact timings live in bench_test.go; this table gives the deterministic
// counters plus a coarse wall-clock so `iabc experiments` output stands on
// its own.
type E10Result struct {
	Checker []E10CheckerRow
	Engines []E10EngineRow
	// ParallelSpeedup is the measured scenarios(8)×workers(P) throughput
	// over the single-worker scenarios(8) row — the multi-core scaling
	// number the parallel sweep exists for. It is recorded only when the
	// host has more than one CPU (a single-core host runs both rows on the
	// same core, making the ratio ≈ 1 by construction; see the
	// "Parallel-sweep scaling caveat" in EXPERIMENTS.md); 0 means
	// not measured.
	ParallelSpeedup float64
	// SpeedupWorkers is the worker count P behind ParallelSpeedup.
	SpeedupWorkers int
}

// E10CheckerRow is one condition-check cost measurement.
type E10CheckerRow struct {
	Graph      string
	N, F       int
	Satisfied  bool
	FaultSets  int64
	Candidates int64
	Elapsed    time.Duration
}

// E10EngineRow is one engine throughput measurement.
type E10EngineRow struct {
	Engine string
	N      int
	Rounds int
	// RoundsPerSec is the coarse throughput (benchmarks give the precise
	// figure).
	RoundsPerSec float64
}

// Title implements Report.
func (*E10Result) Title() string {
	return "E10 — cost of exactness: checker work growth and engine throughput"
}

// Table implements Report.
func (r *E10Result) Table() string {
	rows := make([][]string, 0, len(r.Checker))
	for _, c := range r.Checker {
		rows = append(rows, []string{
			c.Graph, fmt.Sprint(c.N), fmt.Sprint(c.F), yes(c.Satisfied),
			fmt.Sprint(c.FaultSets), fmt.Sprint(c.Candidates), c.Elapsed.Round(time.Microsecond).String(),
		})
	}
	out := table([]string{"graph", "n", "f", "satisfied", "fault sets", "candidates", "elapsed"}, rows)

	engRows := make([][]string, 0, len(r.Engines))
	for _, e := range r.Engines {
		engRows = append(engRows, []string{
			e.Engine, fmt.Sprint(e.N), fmt.Sprint(e.Rounds), fmt.Sprintf("%.0f", e.RoundsPerSec),
		})
	}
	out += table([]string{"engine", "n", "rounds", "rounds/sec"}, engRows)
	if r.ParallelSpeedup > 0 {
		out += fmt.Sprintf("parallel sweep speedup: %.2fx (scenarios(8)×workers(%d) vs scenarios(8), %d CPUs)\n",
			r.ParallelSpeedup, r.SpeedupWorkers, runtime.NumCPU())
	}
	return out
}

// E10Scaling measures checker work on core networks (n = 3f+1 with growing
// f, plus growing n at f = 2) and engine throughput on CoreNetwork(16, 2).
func E10Scaling() (*E10Result, error) {
	res := &E10Result{}
	cases := []struct{ n, f int }{
		{4, 1}, {7, 2}, {10, 3}, {13, 4},
		{10, 2}, {14, 2}, {18, 2},
	}
	for _, tc := range cases {
		g, err := topology.CoreNetwork(tc.n, tc.f)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		chk, err := condition.Check(g, tc.f)
		if err != nil {
			return nil, err
		}
		res.Checker = append(res.Checker, E10CheckerRow{
			Graph: fmt.Sprintf("core(%d,%d)", tc.n, tc.f),
			N:     tc.n, F: tc.f,
			Satisfied:  chk.Satisfied,
			FaultSets:  chk.FaultSetsExamined,
			Candidates: chk.CandidatesExamined,
			Elapsed:    time.Since(start),
		})
	}

	g, err := topology.CoreNetwork(16, 2)
	if err != nil {
		return nil, err
	}
	const rounds = 2000
	engCfg := sim.Config{
		G: g, F: 2,
		Faulty:    faultySetOfSize(16, 2),
		Initial:   ramp(16),
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Hug{High: true},
		MaxRounds: rounds,
	}
	for _, eng := range []sim.Engine{sim.Sequential{}, sim.Concurrent{}, sim.Matrix{}} {
		start := time.Now()
		tr, err := eng.Run(engCfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		res.Engines = append(res.Engines, E10EngineRow{
			Engine: eng.Name(), N: 16, Rounds: tr.Rounds,
			RoundsPerSec: float64(tr.Rounds) / elapsed.Seconds(),
		})
	}
	// The amortization the matrix representation buys: replaying the
	// recorded round structure over a batch of initial vectors. Throughput
	// is vector-rounds per second across the whole batch.
	const batch = 32
	extras := make([][]float64, batch)
	for b := range extras {
		v := ramp(16)
		for i := range v {
			v[i] += float64(b)
		}
		extras[b] = v
	}
	start := time.Now()
	tr, _, err := sim.Matrix{}.RunBatch(engCfg, extras)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res.Engines = append(res.Engines, E10EngineRow{
		Engine: fmt.Sprintf("matrix-batch(%d)", batch), N: 16, Rounds: tr.Rounds,
		RoundsPerSec: float64(tr.Rounds) * batch / elapsed.Seconds(),
	})
	// The other batching dimension: the same point re-simulated under many
	// adversaries with the engine setup shared (sim.RunScenarios) — what the
	// matrix replay cannot vary, since a different adversary changes the
	// recorded round structure itself.
	scens := []sim.Scenario{
		{Adversary: adversary.Hug{High: true}},
		{Adversary: adversary.Hug{}},
		{Adversary: adversary.Extremes{Amplitude: 50}},
		{Adversary: adversary.Fixed{Value: 1e6}},
		{Adversary: adversary.Fixed{Value: -1e6}},
		{Adversary: &adversary.Insider{High: true}},
		{Adversary: &adversary.Insider{}},
		{Adversary: adversary.Conforming{}},
	}
	start = time.Now()
	traces, err := sim.RunScenarios(engCfg, scens)
	if err != nil {
		return nil, err
	}
	elapsed = time.Since(start)
	total := 0
	for _, t := range traces {
		total += t.Rounds
	}
	res.Engines = append(res.Engines, E10EngineRow{
		Engine: fmt.Sprintf("scenarios(%d)", len(scens)), N: 16, Rounds: total,
		RoundsPerSec: float64(total) / elapsed.Seconds(),
	})
	// The same sweep fanned across all cores, one private engine per worker
	// (sim.Sweep): bit-identical traces, near-linear scaling on multi-core
	// machines. Adversary instances are per-scenario, so nothing races.
	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	parRes, err := sim.Sweep(context.Background(), engCfg, scens, sim.SweepOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	elapsed = time.Since(start)
	total = 0
	for _, t := range parRes.Traces {
		total += t.Rounds
	}
	res.Engines = append(res.Engines, E10EngineRow{
		Engine: fmt.Sprintf("scenarios(%d)×workers(%d)", len(scens), workers), N: 16, Rounds: total,
		RoundsPerSec: float64(total) / elapsed.Seconds(),
	})
	// The multi-core scaling ratio the ROADMAP left open: only meaningful
	// when there is more than one CPU to fan the workers across.
	if runtime.NumCPU() > 1 {
		seq := res.Engines[len(res.Engines)-2]
		par := res.Engines[len(res.Engines)-1]
		if seq.RoundsPerSec > 0 {
			res.ParallelSpeedup = par.RoundsPerSec / seq.RoundsPerSec
			res.SpeedupWorkers = workers
		}
	}
	// Composing the two batching dimensions: each scenario's recorded round
	// programs replayed over the extra initial vectors (matrix engine).
	// Throughput counts primary plus replayed vector-rounds.
	start = time.Now()
	comboRes, err := sim.Sweep(context.Background(), engCfg, scens, sim.SweepOptions{
		Engine: sim.Matrix{}, Workers: workers, Extras: extras,
	})
	if err != nil {
		return nil, err
	}
	elapsed = time.Since(start)
	total = 0
	for _, t := range comboRes.Traces {
		total += t.Rounds
	}
	res.Engines = append(res.Engines, E10EngineRow{
		Engine: fmt.Sprintf("matrix-scenarios(%d)×batch(%d)", len(scens), batch), N: 16, Rounds: total,
		RoundsPerSec: float64(total) * (1 + batch) / elapsed.Seconds(),
	})
	return res, nil
}

// Passed reports whether all checker rows verified the expected
// satisfiability (core networks always satisfy) and every engine row
// (sequential, concurrent, matrix, matrix-batch, scenarios, parallel
// scenarios, composed matrix-scenario batch) completed.
func (r *E10Result) Passed() bool {
	for _, c := range r.Checker {
		if !c.Satisfied {
			return false
		}
	}
	return len(r.Checker) > 0 && len(r.Engines) == 7
}
