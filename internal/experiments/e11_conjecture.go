package experiments

import (
	"fmt"

	"iabc/internal/condition"
	"iabc/internal/graph"
	"iabc/internal/topology"
)

// E11Result probes the paper's Section 6.1 conjecture:
//
//	"We conjecture that a core network with n = 3f+1 has the smallest
//	 number of edges possible in any undirected network of 3f+1 nodes for
//	 which an iterative approximate consensus algorithm exists."
//
// The conjecture is open in the paper; this experiment decides it
// computationally for f = 1 and f = 2.
//
// For f = 1 (n = 4): Corollary 3 forces degree ≥ 3 everywhere, so ≥ 6
// undirected edges — and the only 4-node graph with minimum degree 3 is K4,
// which *is* CoreNetwork(4,1). The experiment exhausts all 64 labeled
// graphs to confirm.
//
// For f = 2 (n = 7): CoreNetwork(7,2) has 20 undirected edges. Corollary 3
// forces degree ≥ 5, i.e. ≥ ⌈7·5/2⌉ = 18 edges; a 7-node graph with
// minimum degree 5 and 18 or 19 edges is exactly K7 minus a matching of
// size 3 or 2. The experiment runs the exact checker on every labeled
// matching-complement (105 + 105 graphs). Any satisfying instance refutes
// the conjecture; none confirms that 20 is optimal and the core network
// achieves the optimum.
type E11Result struct {
	// F1 summarizes the exhaustive f = 1 sweep.
	F1 E11F1
	// F2 summarizes the f = 2 boundary sweep.
	F2 E11F2
}

// E11F1 is the f = 1 half of the experiment.
type E11F1 struct {
	GraphsChecked   int
	MinEdges        int // minimum undirected edges among satisfying graphs
	CoreEdges       int // CoreNetwork(4,1) undirected edges
	SatisfiersAtMin int
	ConjectureHolds bool
}

// E11F2 is the f = 2 half.
type E11F2 struct {
	// Checked18 and Checked19 count the minus-matching graphs examined.
	Checked18, Checked19 int
	// Satisfied18 and Satisfied19 count how many satisfied Theorem 1.
	Satisfied18, Satisfied19 int
	CoreEdges                int
	// MinEdges is the smallest edge count of any satisfying 7-node graph
	// (18, 19, or 20 given the Corollary 3 floor).
	MinEdges        int
	ConjectureHolds bool
}

// Title implements Report.
func (*E11Result) Title() string {
	return "E11 — §6.1 conjecture: is the core network edge-minimal at n = 3f+1? (computational)"
}

// Table implements Report.
func (r *E11Result) Table() string {
	rows := [][]string{
		{"1", "4", fmt.Sprintf("%d labeled graphs", r.F1.GraphsChecked),
			fmt.Sprint(r.F1.MinEdges), fmt.Sprint(r.F1.CoreEdges), yes(r.F1.ConjectureHolds)},
		{"2", "7", fmt.Sprintf("K7−M3: %d, K7−M2: %d", r.F2.Checked18, r.F2.Checked19),
			fmt.Sprint(r.F2.MinEdges), fmt.Sprint(r.F2.CoreEdges), yes(r.F2.ConjectureHolds)},
	}
	out := table([]string{"f", "n", "search space", "min edges (satisfying)", "core edges", "conjecture holds"}, rows)
	return out + fmt.Sprintf("f=2 details: %d/%d of the 18-edge and %d/%d of the 19-edge candidates satisfy Theorem 1\n",
		r.F2.Satisfied18, r.F2.Checked18, r.F2.Satisfied19, r.F2.Checked19)
}

// E11Conjecture runs both sweeps.
func E11Conjecture() (*E11Result, error) {
	res := &E11Result{}

	// ---- f = 1, n = 4: exhaustive over all labeled undirected graphs.
	var pairs4 [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			pairs4 = append(pairs4, [2]int{i, j})
		}
	}
	core4, err := topology.CoreNetwork(4, 1)
	if err != nil {
		return nil, err
	}
	res.F1.CoreEdges = core4.UndirectedEdgeCount()
	res.F1.MinEdges = -1
	for mask := 0; mask < 1<<len(pairs4); mask++ {
		b := graph.NewBuilder(4)
		edges := 0
		for bit, e := range pairs4 {
			if mask&(1<<bit) != 0 {
				b.AddUndirected(e[0], e[1])
				edges++
			}
		}
		g, err := b.Build()
		if err != nil {
			return nil, err
		}
		res.F1.GraphsChecked++
		chk, err := condition.Check(g, 1)
		if err != nil {
			return nil, err
		}
		if !chk.Satisfied {
			continue
		}
		switch {
		case res.F1.MinEdges < 0 || edges < res.F1.MinEdges:
			res.F1.MinEdges = edges
			res.F1.SatisfiersAtMin = 1
		case edges == res.F1.MinEdges:
			res.F1.SatisfiersAtMin++
		}
	}
	res.F1.ConjectureHolds = res.F1.MinEdges == res.F1.CoreEdges

	// ---- f = 2, n = 7: the only candidates below the core network's 20
	// edges are K7 minus a matching (Corollary 3 forces min degree 5, so
	// the complement has max degree ≤ 1).
	core7, err := topology.CoreNetwork(7, 2)
	if err != nil {
		return nil, err
	}
	res.F2.CoreEdges = core7.UndirectedEdgeCount()

	k7, err := topology.Complete(7)
	if err != nil {
		return nil, err
	}
	check := func(matching [][2]int) (bool, error) {
		var drop [][2]int
		for _, e := range matching {
			drop = append(drop, e, [2]int{e[1], e[0]})
		}
		g, err := topology.RemoveEdges(k7, drop)
		if err != nil {
			return false, err
		}
		chk, err := condition.Check(g, 2)
		if err != nil {
			return false, err
		}
		return chk.Satisfied, nil
	}
	for _, m := range matchings(7, 3) {
		ok, err := check(m)
		if err != nil {
			return nil, err
		}
		res.F2.Checked18++
		if ok {
			res.F2.Satisfied18++
		}
	}
	for _, m := range matchings(7, 2) {
		ok, err := check(m)
		if err != nil {
			return nil, err
		}
		res.F2.Checked19++
		if ok {
			res.F2.Satisfied19++
		}
	}
	switch {
	case res.F2.Satisfied18 > 0:
		res.F2.MinEdges = 18
	case res.F2.Satisfied19 > 0:
		res.F2.MinEdges = 19
	default:
		res.F2.MinEdges = 20 // the core network's count; floor was 18
	}
	res.F2.ConjectureHolds = res.F2.MinEdges == res.F2.CoreEdges
	return res, nil
}

// matchings enumerates all labeled matchings of exactly size k on n
// vertices.
func matchings(n, k int) [][][2]int {
	var out [][][2]int
	var rec func(used uint, start int, cur [][2]int)
	rec = func(used uint, start int, cur [][2]int) {
		if len(cur) == k {
			m := make([][2]int, k)
			copy(m, cur)
			out = append(out, m)
			return
		}
		for i := start; i < n; i++ {
			if used&(1<<uint(i)) != 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if used&(1<<uint(j)) != 0 {
					continue
				}
				rec(used|1<<uint(i)|1<<uint(j), i+1, append(cur, [2]int{i, j}))
			}
			// The smallest unused vertex is either matched now or never:
			// restricting the outer loop to i = smallest unused avoids
			// duplicate orderings... but matchings that skip i entirely are
			// produced by treating i as permanently unmatched:
			rec(used|1<<uint(i), i+1, cur)
			return
		}
	}
	rec(0, 0, nil)
	return out
}
