package iabc_test

// API stability gates:
//
//   - TestAPISurfaceGolden regenerates the public surface of the root iabc
//     package and diffs it against the committed api/iabc.txt — an
//     accidental signature change fails the build until the golden is
//     regenerated deliberately (`go generate .`).
//   - TestFacadeOnlyConsumers enforces the facade boundary: the CLI and the
//     examples — the in-tree stand-ins for external programs — must not
//     import internal/sim, internal/condition, or internal/async directly;
//     everything they need goes through the iabc package.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iabc/internal/apigen"
)

func TestAPISurfaceGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("api", "iabc.txt"))
	if err != nil {
		t.Fatalf("reading committed surface: %v", err)
	}
	got, err := apigen.Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != got {
		t.Fatalf("api/iabc.txt is stale — the public surface changed.\n"+
			"If the change is intentional, run 'go generate .' and commit the result.\n"+
			"diff (committed vs tree):\n%s", lineDiff(string(want), got))
	}
}

// lineDiff renders a minimal line diff good enough to locate the drift.
func lineDiff(want, got string) string {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	var b strings.Builder
	max := len(wantLines)
	if len(gotLines) > max {
		max = len(gotLines)
	}
	for i := 0; i < max; i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			b.WriteString("- " + w + "\n+ " + g + "\n")
		}
	}
	return b.String()
}

// bannedImports are the implementation packages consumers must reach only
// through the facade.
var bannedImports = []string{
	"iabc/internal/sim",
	"iabc/internal/condition",
	"iabc/internal/async",
}

func TestFacadeOnlyConsumers(t *testing.T) {
	consumers := []string{
		filepath.Join("internal", "cli"),
		"examples",
		filepath.Join("cmd", "iabc"),
	}
	fset := token.NewFileSet()
	for _, root := range consumers {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range file.Imports {
				ipath := strings.Trim(imp.Path.Value, `"`)
				for _, banned := range bannedImports {
					if ipath == banned {
						t.Errorf("%s imports %s directly; consumers go through the iabc facade", path, ipath)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
