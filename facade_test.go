package iabc_test

// Facade equivalence: every iabc entry point must produce bit-identical
// results to the internal implementation it fronts — the facade adds
// context, options, and observation, never semantics.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"iabc"
	"iabc/internal/adversary"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
)

func facadeGraph(t testing.TB) *iabc.Graph {
	t.Helper()
	g, err := iabc.CoreNetwork(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func facadeInitial(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i) * 1.5
	}
	return v
}

func tracesEqual(t *testing.T, label string, want, got *iabc.Trace) {
	t.Helper()
	if want.Rounds != got.Rounds || want.Converged != got.Converged {
		t.Fatalf("%s: rounds/converged %d/%v vs %d/%v", label, got.Rounds, got.Converged, want.Rounds, want.Converged)
	}
	for r := 0; r <= want.Rounds; r++ {
		if math.Float64bits(want.U[r]) != math.Float64bits(got.U[r]) ||
			math.Float64bits(want.Mu[r]) != math.Float64bits(got.Mu[r]) {
			t.Fatalf("%s: round %d differs: U %v vs %v, µ %v vs %v",
				label, r, got.U[r], want.U[r], got.Mu[r], want.Mu[r])
		}
	}
	for i := range want.Final {
		if math.Float64bits(want.Final[i]) != math.Float64bits(got.Final[i]) {
			t.Fatalf("%s: final[%d] %v vs %v", label, i, got.Final[i], want.Final[i])
		}
	}
}

// TestSimulateMatchesEngines pins Simulate against each internal engine's
// Run, bit for bit, and checks the Outcome summary fields.
func TestSimulateMatchesEngines(t *testing.T) {
	g := facadeGraph(t)
	n := g.N()
	initial := facadeInitial(n)
	cfg := sim.Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(n, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adversary.Hug{High: true},
		MaxRounds: 120, Epsilon: 1e-9,
	}
	engines := []struct {
		sel iabc.Engine
		eng sim.Engine
	}{
		{iabc.Sequential, sim.Sequential{}},
		{iabc.ConcurrentPool, sim.Concurrent{}},
		{iabc.Matrix, sim.Matrix{}},
	}
	for _, tc := range engines {
		t.Run(tc.sel.String(), func(t *testing.T) {
			want, err := tc.eng.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var rounds int
			out, err := iabc.Simulate(context.Background(), g,
				iabc.WithEngine(tc.sel),
				iabc.WithF(2),
				iabc.WithFaulty(0, 1),
				iabc.WithInitial(initial),
				iabc.WithAdversary(iabc.Hug{High: true}),
				iabc.WithMaxRounds(120),
				iabc.WithEpsilon(1e-9),
				iabc.WithObserver(func(e iabc.Event) {
					if e.Kind == iabc.EventRound {
						rounds++
					}
				}),
			)
			if err != nil {
				t.Fatal(err)
			}
			tracesEqual(t, tc.sel.String(), want, out.Trace)
			if out.Rounds != want.Rounds || out.Converged != want.Converged ||
				math.Float64bits(out.FinalRange) != math.Float64bits(want.FinalRange()) {
				t.Fatalf("outcome summary %+v does not match trace", out)
			}
			if rounds != want.Rounds+1 { // rounds 0..Rounds inclusive
				t.Errorf("observer saw %d round events, want %d", rounds, want.Rounds+1)
			}
		})
	}
}

// TestSimulateAsyncMatchesRun pins the Async engine arm against async.Run.
func TestSimulateAsyncMatchesRun(t *testing.T) {
	g, err := iabc.Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{0, 1, 2, 3, 4, 5, 6}
	mk := func() async.Config {
		return async.Config{
			G: g, F: 1, Faulty: nodeset.FromMembers(7, 6), Initial: initial,
			Rule: core.TrimmedMean{}, Adversary: adversary.Extremes{Amplitude: 10},
			Delays:    &async.Uniform{B: 2, Rng: rand.New(rand.NewSource(7))},
			MaxRounds: 200, Epsilon: 1e-6,
		}
	}
	want, err := async.Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	var changes int
	out, err := iabc.Simulate(context.Background(), g,
		iabc.WithEngine(iabc.Async),
		iabc.WithF(1),
		iabc.WithFaulty(6),
		iabc.WithInitial(initial),
		iabc.WithAdversary(iabc.Extremes{Amplitude: 10}),
		iabc.WithDelays(&iabc.UniformDelay{B: 2, Rng: rand.New(rand.NewSource(7))}),
		iabc.WithMaxRounds(200),
		iabc.WithEpsilon(1e-6),
		iabc.WithObserver(func(e iabc.Event) { changes++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.AsyncTrace == nil || out.Trace != nil {
		t.Fatal("async outcome must carry AsyncTrace only")
	}
	if out.Converged != want.Converged || out.AsyncTrace.Deliveries != want.Deliveries ||
		out.AsyncTrace.Time != want.Time {
		t.Fatalf("outcome %+v does not match async.Run (deliveries %d, time %v)",
			out, want.Deliveries, want.Time)
	}
	for i := range want.Final {
		if math.Float64bits(out.Final[i]) != math.Float64bits(want.Final[i]) {
			t.Fatalf("final[%d] %v vs %v", i, out.Final[i], want.Final[i])
		}
	}
	if changes == 0 {
		t.Error("observer saw no state-change events")
	}
	if out.Rounds <= 0 {
		t.Errorf("async outcome rounds = %d", out.Rounds)
	}
}

// TestSweepMatchesSim pins the facade sweep — including the composed
// matrix-replay dimension — against sim.Sweep.
func TestSweepMatchesSim(t *testing.T) {
	g := facadeGraph(t)
	n := g.N()
	initial := facadeInitial(n)
	scens := []iabc.Scenario{
		{Name: "hug", Adversary: iabc.Hug{High: true}},
		{Name: "extremes", Adversary: iabc.Extremes{Amplitude: 30}},
		{Name: "short", Adversary: iabc.Fixed{Value: 1e5}, MaxRounds: 20},
	}
	base := sim.Config{
		G: g, F: 2, Faulty: nodeset.FromMembers(n, 0, 1), Initial: initial,
		Rule: core.TrimmedMean{}, Adversary: adversary.Hug{High: true},
		MaxRounds: 90,
	}
	extras := [][]float64{facadeInitial(n), make([]float64, n)}

	want, err := sim.Sweep(context.Background(), base, scens,
		sim.SweepOptions{Engine: sim.Matrix{}, Workers: 2, Extras: extras})
	if err != nil {
		t.Fatal(err)
	}
	done := map[int]string{}
	got, err := iabc.Sweep(context.Background(), g, scens,
		iabc.WithEngine(iabc.Matrix),
		iabc.WithF(2),
		iabc.WithFaulty(0, 1),
		iabc.WithInitial(initial),
		iabc.WithAdversary(iabc.Hug{High: true}),
		iabc.WithMaxRounds(90),
		iabc.WithWorkers(2),
		iabc.WithExtras(extras),
		iabc.WithObserver(func(e iabc.Event) {
			if e.Kind == iabc.EventScenarioDone {
				done[e.Scenario] = e.Name
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		tracesEqual(t, scens[i].Name, want.Traces[i], got.Traces[i])
		for x := range want.Finals[i] {
			for j := range want.Finals[i][x] {
				if math.Float64bits(want.Finals[i][x][j]) != math.Float64bits(got.Finals[i][x][j]) {
					t.Fatalf("finals[%d][%d][%d] differ", i, x, j)
				}
			}
		}
	}
	if len(done) != len(scens) || done[0] != "hug" || done[2] != "short" {
		t.Fatalf("scenario observer calls = %v", done)
	}
}

// TestCheckMatchesCondition pins the facade check — sync and async
// thresholds, both worker counts — against the internal checker, counters
// included.
func TestCheckMatchesCondition(t *testing.T) {
	sat := facadeGraph(t)
	viol, err := iabc.Chord(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		g     *iabc.Graph
		f     int
		async bool
	}{
		{"satisfied", sat, 2, false},
		{"violated", viol, 2, false},
		{"async", sat, 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			threshold := condition.SyncThreshold(tc.f)
			if tc.async {
				threshold = condition.AsyncThreshold(tc.f)
			}
			want, err := condition.CheckThreshold(tc.g, tc.f, threshold)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				opts := []iabc.Option{iabc.WithWorkers(workers)}
				if tc.async {
					opts = append(opts, iabc.WithAsyncCondition())
				}
				var progressed int64
				opts = append(opts, iabc.WithObserver(func(e iabc.Event) {
					if e.Kind == iabc.EventCheckProgress {
						progressed++
					}
				}))
				got, err := iabc.Check(context.Background(), tc.g, tc.f, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if got.Satisfied != want.Satisfied {
					t.Fatalf("workers=%d: verdict %v, want %v", workers, got.Satisfied, want.Satisfied)
				}
				if want.Witness != nil {
					if got.Witness == nil || !got.Witness.F.Equal(want.Witness.F) ||
						!got.Witness.L.Equal(want.Witness.L) || !got.Witness.R.Equal(want.Witness.R) {
						t.Fatalf("workers=%d: witness %v, want %v", workers, got.Witness, want.Witness)
					}
				}
				if workers == 1 && got.CandidatesExamined != want.CandidatesExamined {
					t.Errorf("workers=1 counters differ: %d vs %d", got.CandidatesExamined, want.CandidatesExamined)
				}
				if want.Satisfied && progressed == 0 {
					t.Errorf("workers=%d: no check progress events", workers)
				}
			}
		})
	}
}

// TestMaxFMatchesCondition pins the facade MaxF against the internal scan.
func TestMaxFMatchesCondition(t *testing.T) {
	g, err := iabc.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, wantStats, err := condition.MaxFWithStats(g)
	if err != nil {
		t.Fatal(err)
	}
	var checks []int
	best, stats, err := iabc.MaxFWithStats(context.Background(), g,
		iabc.WithObserver(func(e iabc.Event) {
			if e.Kind == iabc.EventCheckDone {
				checks = append(checks, e.F)
			}
		}))
	if err != nil || best != wantBest {
		t.Fatalf("best=%d err=%v, want %d", best, err, wantBest)
	}
	if stats != wantStats {
		t.Fatalf("stats %+v, want %+v", stats, wantStats)
	}
	if len(checks) != stats.ChecksRun {
		t.Fatalf("observer saw %d checks, stats say %d", len(checks), stats.ChecksRun)
	}
	got, err := iabc.MaxF(context.Background(), g)
	if err != nil || got != wantBest {
		t.Fatalf("MaxF = %d (err %v), want %d", got, err, wantBest)
	}
}

// TestOptionErrors covers the facade's own validation: unknown adversary
// names, conflicting replay options, bad faulty ids, and engine misuse.
func TestOptionErrors(t *testing.T) {
	g := facadeGraph(t)
	initial := facadeInitial(g.N())
	ctx := context.Background()
	cases := []struct {
		name string
		run  func() error
	}{
		{"unknown adversary", func() error {
			_, err := iabc.Simulate(ctx, g, iabc.WithInitial(initial), iabc.WithNamedAdversary("warp-core"))
			return err
		}},
		{"batch and extras", func() error {
			_, err := iabc.Sweep(ctx, g, []iabc.Scenario{{}},
				iabc.WithInitial(initial), iabc.WithBatch(2), iabc.WithExtras([][]float64{initial}))
			return err
		}},
		{"negative batch", func() error {
			_, err := iabc.Sweep(ctx, g, []iabc.Scenario{{}}, iabc.WithInitial(initial), iabc.WithBatch(-1))
			return err
		}},
		{"faulty out of range", func() error {
			_, err := iabc.Simulate(ctx, g, iabc.WithInitial(initial), iabc.WithFaulty(99),
				iabc.WithAdversary(iabc.Silent{}))
			return err
		}},
		{"negative faulty", func() error {
			_, err := iabc.Simulate(ctx, g, iabc.WithInitial(initial), iabc.WithFaulty(-1))
			return err
		}},
		{"async sweep", func() error {
			_, err := iabc.Sweep(ctx, g, []iabc.Scenario{{}},
				iabc.WithInitial(initial), iabc.WithEngine(iabc.Async))
			return err
		}},
		{"async simulate without delays", func() error {
			_, err := iabc.Simulate(ctx, g, iabc.WithInitial(initial), iabc.WithEngine(iabc.Async))
			return err
		}},
		{"missing initial", func() error {
			_, err := iabc.Simulate(ctx, g)
			return err
		}},
		{"extras on sequential engine", func() error {
			_, err := iabc.Sweep(ctx, g, []iabc.Scenario{{}}, iabc.WithInitial(initial),
				iabc.WithEngine(iabc.Sequential), iabc.WithExtras([][]float64{initial}))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.run() == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

// TestWithBatchReplay checks the synthesized replay grid: deterministic in
// the seed and equivalent to an explicit WithExtras of the same vectors.
func TestWithBatchReplay(t *testing.T) {
	g := facadeGraph(t)
	n := g.N()
	initial := facadeInitial(n)
	scens := []iabc.Scenario{{Name: "hug", Adversary: iabc.Hug{High: true}}}
	opts := func(extra ...iabc.Option) []iabc.Option {
		return append([]iabc.Option{
			iabc.WithF(2), iabc.WithFaulty(0, 1), iabc.WithInitial(initial),
			iabc.WithMaxRounds(40), iabc.WithSeed(11),
		}, extra...)
	}
	a, err := iabc.Sweep(context.Background(), g, scens, opts(iabc.WithBatch(3))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := iabc.Sweep(context.Background(), g, scens, opts(iabc.WithBatch(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Finals[0]) != 3 {
		t.Fatalf("finals = %d, want 3", len(a.Finals[0]))
	}
	for x := range a.Finals[0] {
		for j := range a.Finals[0][x] {
			if math.Float64bits(a.Finals[0][x][j]) != math.Float64bits(b.Finals[0][x][j]) {
				t.Fatal("WithBatch is not deterministic in the seed")
			}
		}
	}
	// The same vectors derived by hand must replay identically.
	rng := rand.New(rand.NewSource(11))
	extras := make([][]float64, 3)
	for x := range extras {
		v := make([]float64, n)
		for i := range v {
			v[i] = initial[i] + rng.Float64() - 0.5
		}
		extras[x] = v
	}
	c, err := iabc.Sweep(context.Background(), g, scens, opts(iabc.WithExtras(extras))...)
	if err != nil {
		t.Fatal(err)
	}
	for x := range c.Finals[0] {
		for j := range c.Finals[0][x] {
			if math.Float64bits(a.Finals[0][x][j]) != math.Float64bits(c.Finals[0][x][j]) {
				t.Fatal("WithBatch vectors differ from the documented derivation")
			}
		}
	}

	// Simulate does not consume the replay dimension: WithBatch is ignored
	// per the Option contract and must not flip the engine to Matrix.
	out, err := iabc.Simulate(context.Background(), g,
		iabc.WithF(2), iabc.WithFaulty(0, 1), iabc.WithInitial(initial),
		iabc.WithAdversary(iabc.Hug{High: true}), iabc.WithMaxRounds(40),
		iabc.WithBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Engine != iabc.Sequential {
		t.Fatalf("Simulate with WithBatch selected engine %v, want sequential", out.Engine)
	}
}

// TestFacadeTopologiesAndHelpers smoke-tests the re-exported vocabulary.
func TestFacadeTopologiesAndHelpers(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*iabc.Graph, error)
		n    int
	}{
		{"complete", func() (*iabc.Graph, error) { return iabc.Complete(5) }, 5},
		{"core", func() (*iabc.Graph, error) { return iabc.CoreNetwork(7, 2) }, 7},
		{"chord", func() (*iabc.Graph, error) { return iabc.Chord(9, 2) }, 9},
		{"hypercube", func() (*iabc.Graph, error) { return iabc.Hypercube(3) }, 8},
		{"circulant", func() (*iabc.Graph, error) { return iabc.Circulant(6, []int{1, 2}) }, 6},
	} {
		g, err := tc.mk()
		if err != nil || g.N() != tc.n {
			t.Fatalf("%s: n=%v err=%v", tc.name, g, err)
		}
		// The facade constructors must hand out the same graphs as the
		// internal package.
		ref, err := topology.Complete(5)
		if err != nil {
			t.Fatal(err)
		}
		if tc.name == "complete" && !g.Equal(ref) {
			t.Fatal("facade Complete differs from topology.Complete")
		}
	}
	if alpha, err := iabc.Alpha(facadeGraph(t), 2); err != nil || !(alpha > 0 && alpha < 1) {
		t.Fatalf("Alpha = %v, %v", alpha, err)
	}
	if _, err := iabc.RoundsToEpsilonBound(10, 2, 0.5, 1, 1e-6); err != nil {
		t.Fatal(err)
	}
	if len(iabc.QuickScreen(facadeGraph(t), 2)) != 0 {
		t.Fatal("core(10,2) must pass the quick screen")
	}
	if names := iabc.AdversaryNames(); len(names) == 0 {
		t.Fatal("no adversary names")
	} else {
		for _, name := range names {
			if _, err := iabc.AdversaryByName(name, 1); err != nil {
				t.Fatalf("AdversaryByName(%q): %v", name, err)
			}
		}
	}
	rep, err := iabc.Repair(viol(t), 2, 81)
	if err != nil || len(rep.Added) == 0 {
		t.Fatalf("repair: %v err=%v", rep, err)
	}
}

func viol(t *testing.T) *iabc.Graph {
	t.Helper()
	g, err := iabc.Chord(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
