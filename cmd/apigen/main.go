// Command apigen regenerates api/iabc.txt, the frozen public API surface
// of the root iabc package. It is wired to `go generate .` (see doc.go);
// TestAPISurfaceGolden fails the build when the committed file drifts from
// the tree.
package main

import (
	"fmt"
	"os"

	"iabc/internal/apigen"
)

func main() {
	surface, err := apigen.Surface(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "apigen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll("api", 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "apigen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile("api/iabc.txt", []byte(surface), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "apigen:", err)
		os.Exit(1)
	}
	fmt.Println("wrote api/iabc.txt")
}
