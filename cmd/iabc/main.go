// Command iabc is the CLI for the iterative approximate Byzantine consensus
// library: check the Theorem 1 condition on a topology, search the maximum
// tolerable f, run simulations, emit topologies, and regenerate the paper's
// experiment tables.
//
// Usage:
//
//	iabc check      -topo <spec> -f <faults> [-async]
//	iabc maxf       -topo <spec>
//	iabc run        -topo <spec> -f <faults> [-faulty 0,1] [-adversary name]
//	                [-rounds N] [-eps E] [-engine sequential|concurrent] [-finals]
//	iabc cluster    -topo <spec> [-drop P] [-dup P] [-delay D] [-stall D]
//	iabc serve      -topo <spec> -id <ids> -peers <file> [-rounds N] [-seed S]
//	                [-stall D] [-linger D]
//	iabc topo       -topo <spec> [-format edgelist|dot]
//	iabc experiments
//
// serve runs one process's share of a cross-process cluster over TCP: every
// process is started with the same -topo and -seed (they derive the same
// initial vector), its own -id list, and a shared peers file mapping each
// node id to host:port ("id host:port" lines, '#' comments). Finals print
// as hex floats so bit-identity with `iabc run -finals` is a text diff.
//
// Topology specs:
//
//	complete:<n>          core:<n>,<f>        hypercube:<d>
//	chord:<n>,<f>         ring:<n>            cycle:<n>
//	wheel:<n>             star:<n>            grid:<r>,<c>
//	torus:<r>,<c>         random:<n>,<p>,<seed>
//	file:<path>           (edge-list format: "n <order>" then "<from> <to>")
//	-                     (edge list on stdin)
package main

import (
	"os"

	"iabc/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
