package iabc

// This file is the facade over the live actor runtime: Cluster runs the
// Section 7 asynchronous iteration as goroutine-per-node actors over a
// pluggable Transport (internal/node over internal/transport), alongside
// the vocabulary a caller needs to drive it — the Transport interface, the
// in-process implementation, and the seeded chaos wrapper. The deterministic
// Async engine behind Simulate remains the conformance oracle for this
// runtime; see docs/THEORY.md for the mapping.

import (
	"context"
	"fmt"

	"iabc/internal/async"
	"iabc/internal/node"
	"iabc/internal/transport"
)

// —— Transport vocabulary ——

// Transport moves round-tagged protocol messages between the nodes of a
// cluster: Send with backpressure, a per-node Recv stream, Close. Delivery
// semantics are deliberately weak (at-most-once, unordered, fallible) — the
// actor layer masks loss by idempotent retransmission.
type Transport = transport.Transport

// Msg is one round-tagged protocol message (Round, Value, per-transmission
// Seq).
type Msg = transport.Msg

// Delivery is a Msg as it arrives, stamped with the link it traveled.
type Delivery = transport.Delivery

// InprocTransport is the in-process Transport: one bounded channel per
// receiving node, with backpressure when a queue fills.
type InprocTransport = transport.Inproc

// NewInprocTransport returns an in-process transport for nodes [0, n) with
// the given per-node queue capacity (a default if ≤ 0).
func NewInprocTransport(n, queueCap int) *InprocTransport { return transport.NewInproc(n, queueCap) }

// ChaosTransport wraps any Transport with seeded, reproducible fault
// injection: drops, duplicates, reordering delays, link partitions with
// heal schedules, and node crash windows. Closing it closes the wrapped
// transport — a chaos wrapper owns what it wraps.
type ChaosTransport = transport.Chaos

// ChaosConfig parameterizes a ChaosTransport. Every probabilistic decision
// is a pure function of (Seed, link, Msg.Seq), so the same fault schedule
// replays on every run.
type ChaosConfig = transport.ChaosConfig

// ChaosStats counts what a chaos layer did to traffic.
type ChaosStats = transport.Stats

// LinkPartition cuts every link between two node sets in both directions
// for a wall-clock window (an Until ≤ 0 never heals).
type LinkPartition = transport.Partition

// NodeCrash takes one node off the network for a wall-clock window; under
// Cluster the node's actor is additionally stopped and restarted from its
// durable state when the window closes.
type NodeCrash = transport.Crash

// NewChaosTransport wraps inner with seeded fault injection.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	return transport.NewChaos(inner, cfg)
}

// TCPTransport is the wire Transport: one long-lived TCP connection per
// out-link with lazy dial, reconnect under capped exponential backoff, and
// length-prefixed binary framing. Backpressure propagates end to end: full
// receive queues stop the reader, TCP flow control stops the sender. It
// hosts Recv streams only for its local nodes — the building block of a
// cross-process cluster (one instance per process, `iabc serve`).
type TCPTransport = transport.TCP

// TCPTransportConfig maps node ids to addresses and selects which of them
// this instance hosts. See the internal/transport documentation for the
// queue, backoff, and socket knobs.
type TCPTransportConfig = transport.TCPConfig

// NewTCPTransport returns a wire transport listening for its local nodes'
// traffic and dialing peers on demand.
func NewTCPTransport(cfg TCPTransportConfig) (*TCPTransport, error) { return transport.NewTCP(cfg) }

// ErrLinkDown is the retryable send error: the (from, to) link is inside an
// active partition or crash window and may heal.
var ErrLinkDown = transport.ErrLinkDown

// ErrTransportClosed is returned by sends after the transport closed.
var ErrTransportClosed = transport.ErrClosed

// JitterDelay is the lock-free deterministic DelayPolicy for the Async
// engine: delays are a seeded hash of (sender, receiver, message index),
// uniform in (0, B] — the concurrency-safe alternative to UniformDelay's
// shared generator.
type JitterDelay = async.Jitter

// —— The cluster runner ——

// ClusterResult records one cluster run: the stop verdict (Converged /
// Stalled), per-node round counters, the final state vector and fault-free
// ranges, and the robustness counters (deliveries, resends, abandoned
// sends, restarts) recording what the run survived.
type ClusterResult = node.Result

// Cluster runs the Section 7 asynchronous iteration as a live cluster:
// every fault-free node is a goroutine actor owning its state, round
// counter, and quorum inbox, talking to its peers only through a Transport;
// faulty nodes are driven by the configured adversary. Actors mask message
// loss by idempotent stall-triggered retransmission, retry failed sends
// with capped backoff inside a per-message budget, and survive configured
// crash windows by restarting from durable state — so the run degrades
// gracefully under chaos instead of deadlocking.
//
// Required options: WithInitial. Typical options: WithF, WithFaulty,
// WithAdversary, WithMaxRounds, WithEpsilon, WithChaos or WithTransport,
// WithResendEvery, WithSendTimeout, WithStallAfter. WithObserver streams
// one EventNodeUpdate per fault-free state change, serialized. By default
// the run owns an in-process transport (chaos-wrapped under WithChaos and
// closed on return); WithTransport substitutes a caller-owned one, which is
// left open.
//
// The run ends when the WithEpsilon stop fires, every fault-free node
// reaches WithMaxRounds, the WithStallAfter liveness cutoff fires, or ctx
// is canceled (the error wraps the cause). Timing knobs are wall-clock:
// unlike Simulate's engines this is a real concurrent system, so round
// counts are reproducible only in the loss-free fixed-quorum regime —
// final values, not schedules, are what the conformance tests pin.
func Cluster(ctx context.Context, g *Graph, opts ...Option) (*ClusterResult, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.transport != nil && c.hasChaos {
		return nil, fmt.Errorf("iabc: WithTransport and WithChaos are mutually exclusive; wrap the transport with NewChaosTransport instead")
	}
	if c.transport != nil && c.tcp != nil {
		return nil, fmt.Errorf("iabc: WithTransport and WithTCPTransport are mutually exclusive")
	}
	faulty, err := c.faultySet(g.N())
	if err != nil {
		return nil, err
	}
	tr := c.transport
	if tr == nil {
		var owned Transport
		if c.tcp != nil {
			if len(c.tcp.Addrs) != g.N() {
				return nil, fmt.Errorf("iabc: WithTCPTransport has %d addresses for a %d-node graph",
					len(c.tcp.Addrs), g.N())
			}
			tcpCfg := *c.tcp
			if len(tcpCfg.Local) == 0 {
				tcpCfg.Local = c.localNodes
			}
			wire, err := NewTCPTransport(tcpCfg)
			if err != nil {
				return nil, err
			}
			owned = wire
		} else {
			owned = NewInprocTransport(g.N(), 0)
		}
		if c.hasChaos {
			owned = NewChaosTransport(owned, c.chaos)
		}
		defer owned.Close()
		tr = owned
	}
	cfg := node.Config{
		G:           g,
		F:           c.f,
		Faulty:      faulty,
		Initial:     c.initial,
		Rule:        c.rule,
		Adversary:   c.adversary,
		Transport:   tr,
		MaxRounds:   c.maxRounds,
		Epsilon:     c.epsilon,
		ResendEvery: c.resendEvery,
		SendTimeout: c.sendTimeout,
		StallAfter:  c.stallAfter,
		Crashes:     c.chaos.Crashes,
		Local:       c.localNodes,
		Linger:      c.linger,
	}
	if obs := c.observer; obs != nil {
		cfg.OnUpdate = func(nd, round int, value, rng float64) {
			obs(Event{Kind: EventNodeUpdate, Node: nd, Round: round, Value: value, Range: rng})
		}
	}
	return node.Run(ctx, cfg)
}
