package iabc_test

import (
	"context"
	"fmt"
	"log"

	"iabc"
)

// ExampleSimulate runs Algorithm 1 on a core network with one Byzantine
// node through the public facade: check the Theorem 1 condition first,
// then simulate and read the engine-independent outcome.
func ExampleSimulate() {
	ctx := context.Background()
	g, err := iabc.CoreNetwork(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iabc.Check(ctx, g, 1)
	if err != nil || !res.Satisfied {
		log.Fatalf("unsafe topology: %v %v", res.Witness, err)
	}
	out, err := iabc.Simulate(ctx, g,
		iabc.WithF(1),
		iabc.WithFaulty(3),
		iabc.WithInitial([]float64{10, 20, 30, 99}),
		iabc.WithAdversary(iabc.Fixed{Value: 1000}),
		iabc.WithEpsilon(1e-6),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v rounds=%d\n", out.Converged, out.Rounds)
	fmt.Printf("agreement inside honest hull [10,30]: %v\n",
		out.Final[0] >= 10 && out.Final[0] <= 30)
	// Output:
	// converged=true rounds=24
	// agreement inside honest hull [10,30]: true
}

// ExampleSweep fans one configuration across three adversaries on the
// sequential engine, streaming per-scenario completions through an
// observer.
func ExampleSweep() {
	ctx := context.Background()
	g, err := iabc.CoreNetwork(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	initial := []float64{3, 1, 4, 1, 5, 9, 2}
	scens := []iabc.Scenario{
		{Name: "hug", Adversary: iabc.Hug{High: true}},
		{Name: "extremes", Adversary: iabc.Extremes{Amplitude: 50}},
		{Name: "silent", Adversary: iabc.Silent{}},
	}
	res, err := iabc.Sweep(ctx, g, scens,
		iabc.WithF(2),
		iabc.WithFaulty(0, 1),
		iabc.WithInitial(initial),
		iabc.WithMaxRounds(500),
		iabc.WithEpsilon(1e-6),
	)
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range res.Traces {
		fmt.Printf("%s: converged=%v\n", scens[i].Name, tr.Converged)
	}
	// Output:
	// hug: converged=true
	// extremes: converged=true
	// silent: converged=true
}
