package iabc_test

// Distributed-facade equivalence: WithWorkerPool must be invisible in the
// results — Check, MaxF, and Sweep return exactly what the single-process
// call returns, with the work flowing through the coordinator–worker job
// protocol instead. Also pins the sweep's durable checkpointing surface
// (WithBackend) on both the local and distributed paths.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"iabc"
)

func distribScenarios() []iabc.Scenario {
	return []iabc.Scenario{
		{Name: "hug-low", Adversary: iabc.Hug{}},
		{Name: "silent", Adversary: iabc.Silent{}},
		{Name: "insider", Adversary: &iabc.Insider{High: true}},
	}
}

func distribSweepOpts(initial []float64, extra ...iabc.Option) []iabc.Option {
	return append([]iabc.Option{
		iabc.WithF(2),
		iabc.WithFaulty(0, 1),
		iabc.WithInitial(initial),
		iabc.WithAdversary(iabc.Hug{High: true}),
		iabc.WithMaxRounds(60),
		iabc.WithRecordStates(),
	}, extra...)
}

// TestWorkerPoolCheckMatchesLocal runs Check through a two-worker pool and
// requires the full CheckResult — witness and counters included — to
// deep-equal the local scan, with the coordinator summary observed.
func TestWorkerPoolCheckMatchesLocal(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*iabc.Graph, error)
		f    int
	}{
		{"core-satisfied", func() (*iabc.Graph, error) { return iabc.CoreNetwork(10, 2) }, 2},
		{"chord-violated", func() (*iabc.Graph, error) { return iabc.Chord(7, 2) }, 2},
	} {
		g, err := tc.mk()
		if err != nil {
			t.Fatal(err)
		}
		want, err := iabc.Check(context.Background(), g, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		var summary iabc.Event
		got, err := iabc.Check(context.Background(), g, tc.f,
			iabc.WithWorkerPool(2),
			iabc.WithObserver(func(e iabc.Event) {
				if e.Kind == iabc.EventCoordinator {
					summary = e
				}
			}),
		)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pooled check %+v, local %+v", tc.name, got, want)
		}
		if summary.Kind != iabc.EventCoordinator || summary.Name == "" || summary.Done == 0 {
			t.Fatalf("%s: coordinator summary event = %+v", tc.name, summary)
		}
	}
}

// TestWorkerPoolMaxFMatchesLocal distributes the whole f-sweep and compares
// best f plus every aggregated stat against the local scan.
func TestWorkerPoolMaxFMatchesLocal(t *testing.T) {
	g, err := iabc.Chord(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, wantStats, err := iabc.MaxFWithStats(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	gotBest, gotStats, err := iabc.MaxFWithStats(context.Background(), g, iabc.WithWorkerPool(2))
	if err != nil {
		t.Fatal(err)
	}
	if gotBest != wantBest || !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("pooled maxf = %d %+v, local %d %+v", gotBest, gotStats, wantBest, wantStats)
	}
}

// TestWorkerPoolSweepMatchesLocal runs a sweep through the pool — composed
// with WithCoordinator on an ephemeral port — and compares every trace
// bit-for-bit.
func TestWorkerPoolSweepMatchesLocal(t *testing.T) {
	g := facadeGraph(t)
	initial := facadeInitial(g.N())
	scens := distribScenarios()

	want, err := iabc.Sweep(context.Background(), g, scens, distribSweepOpts(initial)...)
	if err != nil {
		t.Fatal(err)
	}
	var summary iabc.Event
	got, err := iabc.Sweep(context.Background(), g, scens, distribSweepOpts(initial,
		iabc.WithCoordinator("127.0.0.1:0"),
		iabc.WithWorkerPool(2),
		iabc.WithObserver(func(e iabc.Event) {
			if e.Kind == iabc.EventCoordinator {
				summary = e
			}
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scens {
		tracesEqual(t, scens[i].Name, want.Traces[i], got.Traces[i])
		for r := range want.Traces[i].States {
			for j := range want.Traces[i].States[r] {
				if math.Float64bits(want.Traces[i].States[r][j]) != math.Float64bits(got.Traces[i].States[r][j]) {
					t.Fatalf("%s: states[%d][%d] differ", scens[i].Name, r, j)
				}
			}
		}
	}
	if summary.Kind != iabc.EventCoordinator || summary.Total == 0 {
		t.Fatalf("coordinator summary event = %+v", summary)
	}
}

// TestSweepResumeThroughFacade pins the sweep checkpointing surface: a
// sweep over WithBackend persists per-scenario results, and re-running it —
// locally or through a worker pool — resumes them bit-identically.
func TestSweepResumeThroughFacade(t *testing.T) {
	g := facadeGraph(t)
	initial := facadeInitial(g.N())
	scens := distribScenarios()
	store := iabc.NewMemBackend()

	want, err := iabc.Sweep(context.Background(), g, scens,
		distribSweepOpts(initial, iabc.WithBackend(store))...)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := iabc.Sweep(context.Background(), g, scens,
		distribSweepOpts(initial, iabc.WithBackend(store))...)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ScenariosResumed != len(scens) {
		t.Fatalf("local resume: ScenariosResumed = %d, want %d", resumed.ScenariosResumed, len(scens))
	}
	pooled, err := iabc.Sweep(context.Background(), g, scens,
		distribSweepOpts(initial, iabc.WithBackend(store), iabc.WithWorkerPool(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.ScenariosResumed != len(scens) {
		t.Fatalf("pooled resume: ScenariosResumed = %d, want %d", pooled.ScenariosResumed, len(scens))
	}
	for i := range scens {
		tracesEqual(t, scens[i].Name+"/local", want.Traces[i], resumed.Traces[i])
		tracesEqual(t, scens[i].Name+"/pooled", want.Traces[i], pooled.Traces[i])
	}

	// A different seed salts the identity: nothing resumes.
	fresh, err := iabc.Sweep(context.Background(), g, scens,
		distribSweepOpts(initial, iabc.WithBackend(store), iabc.WithSeed(7))...)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ScenariosResumed != 0 {
		t.Fatalf("different seed resumed %d scenarios", fresh.ScenariosResumed)
	}
}
