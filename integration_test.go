package iabc_test

// End-to-end integration: the full designer's pipeline across modules —
// generate a topology, audit it, repair it when it falls short, simulate
// Algorithm 1 under attack on the repaired network, and verify the run
// against the paper's analysis machinery. Each stage consumes the previous
// stage's real output; nothing is mocked.

import (
	"context"
	"math/rand"
	"testing"

	"iabc/internal/adversary"
	"iabc/internal/analysis"
	"iabc/internal/async"
	"iabc/internal/condition"
	"iabc/internal/core"
	"iabc/internal/nodeset"
	"iabc/internal/sim"
	"iabc/internal/topology"
	"iabc/internal/workload"
)

func TestPipelineRepairThenConverge(t *testing.T) {
	// 1. A topology that audits below target: the 3-cube tolerates f = 0.
	g, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	maxF, err := condition.MaxF(g)
	if err != nil {
		t.Fatal(err)
	}
	if maxF != 0 {
		t.Fatalf("3-cube MaxF = %d, want 0", maxF)
	}

	// 2. Repair it to tolerate f = 1.
	rep, err := condition.Repair(g, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := condition.CheckParallel(context.Background(), rep.Repaired, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Satisfied {
		t.Fatal("repaired cube fails the exact check")
	}

	// 3. Simulate on the repaired graph with a Byzantine node running the
	// sharpest in-range attack, on the worst-case bimodal inputs.
	n := rep.Repaired.N()
	faulty := nodeset.FromMembers(n, 5)
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: rep.Repaired, F: 1, Faulty: faulty,
		Initial:   workload.Bimodal(n, 0, 1),
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Insider{High: true},
		MaxRounds: 5000, Epsilon: 1e-7, RecordStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("repaired cube did not converge; range %v", tr.FinalRange())
	}
	if _, bad := tr.ValidityViolation(1e-9); bad {
		t.Fatal("validity violated on repaired graph")
	}

	// 4. The analysis machinery must accept the run: every Theorem 3 phase
	// within the Lemma 5 bound, and the empirical rate strictly below 1.
	phases, err := analysis.PhaseTrace(rep.Repaired, 1, tr, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) == 0 {
		t.Fatal("no phases extracted")
	}
	for _, p := range phases {
		if !p.Within {
			t.Errorf("phase violates Lemma 5: %v", p)
		}
	}
	if rate := analysis.EmpiricalRate(tr); rate <= 0 || rate >= 1 {
		t.Errorf("empirical rate %v not in (0,1)", rate)
	}
}

func TestPipelineSyncAsyncAgreementValues(t *testing.T) {
	// The same network and inputs through both engines: both must land
	// inside the honest hull, independently of scheduling model.
	const n, f = 7, 1
	g, err := topology.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Gaussian(n, 50, 10, rand.New(rand.NewSource(3)))
	faulty := nodeset.FromMembers(n, 0)
	lo, hi := core.RangeOf(inputs[1:]) // honest hull (node 0 is faulty)

	syncTr, err := sim.Concurrent{}.Run(sim.Config{
		G: g, F: f, Faulty: faulty, Initial: inputs,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Extremes{Amplitude: 1000},
		MaxRounds: 2000, Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	asyncTr, err := async.Run(context.Background(), async.Config{
		G: g, F: f, Faulty: faulty, Initial: inputs,
		Rule:      core.TrimmedMean{},
		Adversary: adversary.Extremes{Amplitude: 1000},
		Delays:    &async.Uniform{B: 2, Rng: rand.New(rand.NewSource(4))},
		MaxRounds: 2000, Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !syncTr.Converged || !asyncTr.Converged {
		t.Fatalf("convergence: sync=%v async=%v", syncTr.Converged, asyncTr.Converged)
	}
	for i := 1; i < n; i++ {
		if v := syncTr.Final[i]; v < lo-1e-6 || v > hi+1e-6 {
			t.Errorf("sync node %d final %v outside honest hull [%v,%v]", i, v, lo, hi)
		}
		if v := asyncTr.Final[i]; v < lo-1e-6 || v > hi+1e-6 {
			t.Errorf("async node %d final %v outside honest hull [%v,%v]", i, v, lo, hi)
		}
	}
}

func TestPipelineWitnessRoundTrip(t *testing.T) {
	// A witness found by the checker must (a) verify, (b) power the
	// Theorem 1 attack into a live freeze, and (c) be neutralized by the
	// repair it suggests.
	g, err := topology.Chord(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := condition.Check(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Satisfied {
		t.Skip("chord(9,2) unexpectedly satisfied — sweep covered elsewhere")
	}
	w := chk.Witness
	if err := w.Verify(g, 2, condition.SyncThreshold(2)); err != nil {
		t.Fatal(err)
	}

	initial, err := workload.BimodalSets(9, w.L.Members(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// C nodes mid-range.
	w.C.ForEach(func(i int) bool {
		initial[i] = 0.5
		return true
	})
	tr, err := sim.Sequential{}.Run(sim.Config{
		G: g, F: 2, Faulty: w.F.Clone(), Initial: initial,
		Rule: core.TrimmedMean{},
		Adversary: adversary.PartitionAttack{
			L: w.L, R: w.R, Low: 0, High: 1, Eps: 1,
		},
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.FinalRange() != 1 {
		t.Fatalf("attack failed to hold the range: %v", tr.FinalRange())
	}

	rep, err := condition.Repair(g, 2, 81)
	if err != nil {
		t.Fatal(err)
	}
	after, err := condition.Check(rep.Repaired, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Satisfied {
		t.Fatal("repair did not fix chord(9,2)")
	}
}
